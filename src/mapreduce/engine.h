// The classic (Hadoop-equivalent) MapReduce engine.
//
// Executes one batch job: schedule map tasks with block locality, shuffle
// all map output over the fabric, sort/group at the reduce side, write
// per-reduce part files back to DFS. Every job pays job initialization, every
// task pays task initialization — the per-iteration overhead that iMapReduce
// eliminates (§2.2 limitation 1).
#pragma once

#include <atomic>

#include "cluster/cluster.h"
#include "mapreduce/api.h"

namespace imr {

class MapReduceEngine {
 public:
  explicit MapReduceEngine(Cluster& cluster) : cluster_(cluster) {}

  // Runs the job to completion. `submit_vt_ns` is the virtual time of
  // submission (a driver chains jobs by passing the previous end time).
  JobResult run_job(const JobConf& conf, int64_t submit_vt_ns = 0);

 private:
  Cluster& cluster_;
};

// Resolves a path-or-directory-prefix into concrete file paths
// (sorted; throws DfsError when nothing matches).
std::vector<std::string> resolve_input_paths(MiniDfs& dfs,
                                             const std::string& path);

}  // namespace imr
