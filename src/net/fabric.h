// net::Fabric — message passing between tasks with virtual-time costing.
//
// An Endpoint is a named mailbox owned by a task and homed on a worker.
// Senders pay the serialization time (bytes / bandwidth) on their own virtual
// clock — consecutive sends from one task serialize, like a NIC — and the
// message becomes available at the receiver at `sender-finish + latency`.
// Receivers sync their clock forward to each message's ready time, so a
// barrier over many senders is automatically max() over their finish times.
//
// Local delivery (sender and receiver homed on the same worker) is charged at
// memory bandwidth and does not count as remote traffic — this is exactly the
// saving iMapReduce gets from co-locating each reduce task with its paired
// map task (§3.2.1).
//
// Channel faults: set_channel_faults arms a seeded per-attempt drop
// probability. A dropped attempt charges the wasted wire time plus a
// detection timeout, then retries under bounded exponential backoff; the
// final permitted attempt always delivers, so transient faults cost virtual
// time but never lose data. Every attempt lands in the fabric's message
// ledger (channel_stats), which the InvariantChecker reconciles after a run:
// attempts == delivered + dropped + rejected, and once quiesced
// delivered == received + discarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/blocking_queue.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "metrics/invariants.h"
#include "metrics/metrics.h"

namespace imr {

// Seeded transient-fault model for every channel of a fabric.
struct ChannelFaultConfig {
  double drop_rate = 0.0;  // per-attempt drop probability; 0 disables faults
  uint64_t seed = 1;
  // A drop is detected after `retry_timeout` (charged to the sender), then
  // the send is retried; the timeout doubles per retry (`backoff_factor`) up
  // to `max_backoff`. Attempt number `max_attempts` always succeeds.
  int max_attempts = 10;
  SimDuration retry_timeout = sim_us(200);
  double backoff_factor = 2.0;
  SimDuration max_backoff = sim_ms(20);
};

namespace detail {
// Shared between the Fabric and its endpoints so that receive/discard counts
// survive endpoint destruction (the checker runs after job teardown).
struct ChannelLedger {
  std::atomic<int64_t> attempts{0};
  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> dropped{0};
  std::atomic<int64_t> rejected{0};
  std::atomic<int64_t> received{0};
  std::atomic<int64_t> discarded{0};
};
}  // namespace detail

struct NetMessage {
  enum class Kind { kData, kEos, kControl };

  Kind kind = Kind::kData;
  int64_t vt_ready = 0;  // virtual time of availability at the receiver
  int from_task = -1;    // engine-level sender id (task index, or -1 master)
  int iteration = 0;     // iterative protocols tag batches by iteration
  int generation = 0;    // job generation; receivers drop stale-generation
                         // data after a rollback (§3.4)
  KVVec records;         // data payload
  Bytes control;         // control payload

  std::size_t payload_bytes() const {
    // 32 bytes of framing/header per message.
    return wire_size(records) + control.size() + 32;
  }
};

// A mailbox. Created via Fabric so that delivery can be costed.
class Endpoint {
 public:
  Endpoint(std::string name, int home_worker,
           std::shared_ptr<detail::ChannelLedger> ledger = nullptr)
      : name_(std::move(name)),
        home_worker_(home_worker),
        ledger_(std::move(ledger)) {}

  // Undrained messages at teardown are declared discards in the ledger.
  ~Endpoint() {
    if (ledger_) {
      ledger_->discarded.fetch_add(static_cast<int64_t>(queue_.size()),
                                   std::memory_order_relaxed);
    }
  }

  const std::string& name() const { return name_; }
  int home_worker() const { return home_worker_.load(); }
  // Tasks migrate between workers (§3.4.2); their mailbox moves with them.
  void set_home_worker(int w) { home_worker_.store(w); }

  // Blocking receive; syncs `vt` to the message availability time.
  // Returns nullopt when the endpoint is closed and drained.
  std::optional<NetMessage> receive(VClock& vt) {
    auto msg = queue_.pop();
    if (msg) {
      vt.sync_to(msg->vt_ready);
      count_received();
    }
    return msg;
  }

  std::optional<NetMessage> try_receive(VClock& vt) {
    auto msg = queue_.try_pop();
    if (msg) {
      vt.sync_to(msg->vt_ready);
      count_received();
    }
    return msg;
  }

  void close() { queue_.close(); }
  // Discard stale traffic and reopen (task rollback).
  void reset() {
    std::size_t discarded = queue_.reset();
    if (ledger_ && discarded > 0) {
      ledger_->discarded.fetch_add(static_cast<int64_t>(discarded),
                                   std::memory_order_relaxed);
    }
  }
  std::size_t pending() const { return queue_.size(); }

 private:
  friend class Fabric;

  void count_received() {
    if (ledger_) ledger_->received.fetch_add(1, std::memory_order_relaxed);
  }

  std::string name_;
  std::atomic<int> home_worker_;
  std::shared_ptr<detail::ChannelLedger> ledger_;
  BlockingQueue<NetMessage> queue_;
};

class Fabric {
 public:
  Fabric(const CostModel& cost, MetricsRegistry& metrics)
      : cost_(cost),
        metrics_(metrics),
        ledger_(std::make_shared<detail::ChannelLedger>()),
        fault_rng_(1) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Arms (or, with drop_rate 0, disarms) transient channel faults for every
  // subsequent send on this fabric.
  void set_channel_faults(const ChannelFaultConfig& config);

  // Installed once by the cluster before any task runs: packets from a worker
  // the master has declared dead never reach the wire. A zombie task — an old
  // generation racing its Kill message after a recovery — may still execute
  // for a while, but its machine is gone, so its sends are suppressed. They
  // stay on the ledger as drops so conservation reconciles, and never count
  // as traffic; this is what keeps the reduce->map channel at zero remote
  // bytes even through cascading recoveries. Master sends (sender_worker -1)
  // are never suppressed.
  void set_liveness_probe(std::function<bool(int)> probe) {
    liveness_ = std::move(probe);
  }

  // Snapshot of the cumulative message ledger (see InvariantChecker).
  ChannelStats channel_stats() const;

  // Creates and registers an endpoint. Replaces any previous endpoint with
  // the same name (engines re-create mailboxes between jobs).
  std::shared_ptr<Endpoint> create_endpoint(const std::string& name,
                                            int home_worker);
  std::shared_ptr<Endpoint> find(const std::string& name) const;
  void remove_endpoint(const std::string& name);

  // Sends `msg` from a task homed on `sender_worker` whose clock is `vt`.
  // Charges the sender and stamps msg.vt_ready.
  void send(int sender_worker, VClock& vt, Endpoint& to, NetMessage msg,
            TrafficCategory category);

  // Convenience: send the same payload to many endpoints (reduce->map
  // broadcast, §5.1). Each copy is charged separately.
  void broadcast(int sender_worker, VClock& vt,
                 const std::vector<std::shared_ptr<Endpoint>>& to,
                 const NetMessage& msg, TrafficCategory category);

 private:
  // True when this attempt is fault-dropped (seeded; serialized by a mutex —
  // the draw *order* across sender threads affects only which sends pay the
  // retry penalty, never message contents or per-sender FIFO order).
  bool draw_drop();

  const CostModel& cost_;
  MetricsRegistry& metrics_;
  std::function<bool(int)> liveness_;  // set before any concurrency
  std::shared_ptr<detail::ChannelLedger> ledger_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_;

  std::mutex fault_mu_;
  ChannelFaultConfig faults_;
  Rng fault_rng_;
};

}  // namespace imr
