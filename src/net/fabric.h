// net::Fabric — message passing between tasks with virtual-time costing.
//
// An Endpoint is a named mailbox owned by a task and homed on a worker.
// Senders pay the serialization time (bytes / bandwidth) on their own virtual
// clock — consecutive sends from one task serialize, like a NIC — and the
// message becomes available at the receiver at `sender-finish + latency`.
// Receivers sync their clock forward to each message's ready time, so a
// barrier over many senders is automatically max() over their finish times.
//
// Local delivery (sender and receiver homed on the same worker) is charged at
// memory bandwidth and does not count as remote traffic — this is exactly the
// saving iMapReduce gets from co-locating each reduce task with its paired
// map task (§3.2.1).
//
// Hot-path discipline: with channel faults disarmed (the common case), send()
// takes no fabric-global lock — a single relaxed atomic load skips the fault
// machinery, and the only mutex touched is the target mailbox's own queue.
// Data payloads travel behind a shared handle, so broadcasting one batch to T
// mailboxes enqueues T lightweight references to ONE records buffer instead
// of T deep copies; byte accounting is per message and therefore unchanged.
//
// Channel faults: set_channel_faults arms a seeded per-attempt drop
// probability. A dropped attempt charges the wasted wire time plus a
// detection timeout, then retries under bounded exponential backoff; the
// final permitted attempt always delivers, so transient faults cost virtual
// time but never lose data. Every attempt lands in the fabric's message
// ledger (channel_stats), which the InvariantChecker reconciles after a run:
// attempts == delivered + dropped + rejected, and once quiesced
// delivered == received + discarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/blocking_queue.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "metrics/invariants.h"
#include "metrics/metrics.h"
#include "metrics/trace.h"

namespace imr {

class TelemetryLedger;

// Seeded transient-fault model for every channel of a fabric.
struct ChannelFaultConfig {
  double drop_rate = 0.0;  // per-attempt drop probability; 0 disables faults
  uint64_t seed = 1;
  // A drop is detected after `retry_timeout` (charged to the sender), then
  // the send is retried; the timeout doubles per retry (`backoff_factor`) up
  // to `max_backoff`. Attempt number `max_attempts` always succeeds.
  int max_attempts = 10;
  SimDuration retry_timeout = sim_us(200);
  double backoff_factor = 2.0;
  SimDuration max_backoff = sim_ms(20);
};

namespace detail {
// Shared between the Fabric and its endpoints so that receive/discard counts
// survive endpoint destruction (the checker runs after job teardown).
struct ChannelLedger {
  std::atomic<int64_t> attempts{0};
  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> dropped{0};
  std::atomic<int64_t> rejected{0};
  std::atomic<int64_t> received{0};
  std::atomic<int64_t> discarded{0};
};
}  // namespace detail

struct NetMessage {
  enum class Kind { kData, kEos, kControl };

  Kind kind = Kind::kData;
  int64_t vt_ready = 0;  // virtual time of availability at the receiver
  int from_task = -1;    // engine-level sender id (task index, or -1 master)
  int iteration = 0;     // iterative protocols tag batches by iteration
  int generation = 0;    // job generation; receivers drop stale-generation
                         // data after a rollback (§3.4)
  // Tracing: nonzero flow id links this message's send event to its receive
  // event (a Perfetto arrow); trace_cat is the TrafficCategory, carried so
  // the receiver can name the flow and settle the in-flight counter. Stamped
  // by Fabric::send only while tracing is enabled.
  uint64_t trace_flow = 0;
  uint8_t trace_cat = 0;
  // Data payload, behind a shared handle: copying a NetMessage (broadcast
  // fan-out) shares the one records buffer. null means "no records".
  std::shared_ptr<KVVec> payload;
  Bytes control;  // control payload

  void set_records(KVVec records) {
    payload = std::make_shared<KVVec>(std::move(records));
  }

  // Read-only view of the records (empty when there is no payload).
  const KVVec& records() const {
    static const KVVec kEmpty;
    return payload ? *payload : kEmpty;
  }

  // Fabric::broadcast marks every fan-out copy it enqueues; take_records on
  // a marked message must not mutate the buffer (siblings read it too).
  void mark_payload_shared() { payload_shared_ = true; }
  bool payload_shared() const { return payload_shared_; }

  // Takes ownership of the records: moves them out in the point-to-point
  // case, where this handle's chain of custody (sender -> queue -> receiver)
  // is the only one that ever existed, and deep-copies for marked fan-out
  // messages — sibling receivers may be reading the same buffer
  // concurrently, so a shared buffer is never mutated. (The decision is the
  // static mark, NOT use_count(): a relaxed count load does not synchronize
  // with a sibling's release, so "count dropped to 1" cannot license a
  // move.) Each deep copy is counted process-wide.
  KVVec take_records() {
    if (!payload) return {};
    KVVec out;
    if (payload_shared_) {
      payload_deep_copies_.fetch_add(1, std::memory_order_relaxed);
      out = *payload;
    } else {
      out = std::move(*payload);
    }
    payload.reset();
    return out;
  }

  // Process-wide count of payload deep copies made by take_records() on
  // still-shared payloads. Benches and tests snapshot it to assert that
  // shipping one batch to T endpoints performs O(1) payload copies.
  static int64_t payload_deep_copies() {
    return payload_deep_copies_.load(std::memory_order_relaxed);
  }

  std::size_t payload_bytes() const {
    // 32 bytes of framing/header per message. Every message carrying a
    // shared payload is charged the full payload size — sharing is a memory
    // optimization, not a traffic one.
    return (payload ? wire_size(*payload) : 0) + control.size() + 32;
  }

  // Aggregated exchange (DESIGN.md §9): when set, the fabric charges this
  // many bytes instead of payload_bytes(). Fabric::send_coalesced sets it to
  // ZERO on every sibling copy after the first: one wire transfer per
  // destination worker carries the full payload + framing, and the co-homed
  // endpoints' mailbox hand-offs happen in memory after the frame has
  // already landed on the worker — they cost nothing on the wire.
  static constexpr std::size_t kChargeDefault = SIZE_MAX;
  std::size_t charge_override = kChargeDefault;
  std::size_t charge_bytes() const {
    return charge_override != kChargeDefault ? charge_override
                                             : payload_bytes();
  }

 private:
  bool payload_shared_ = false;
  inline static std::atomic<int64_t> payload_deep_copies_{0};
};

// A mailbox. Created via Fabric so that delivery can be costed.
//
// An endpoint is pinned to its home worker for life. Tasks migrate between
// workers (§3.4.2) by the master *recreating* their endpoints homed on the
// target worker (respawn_and_rollback) — a mailbox is replaced, never moved,
// and rollback does not flush surviving mailboxes either: the Rollback
// control message shares the queue with data, so stale traffic is filtered
// by the receiver's generation check and undrained leftovers are declared
// discards at teardown.
class Endpoint {
 public:
  Endpoint(std::string name, int home_worker,
           std::shared_ptr<detail::ChannelLedger> ledger = nullptr,
           Histogram* queue_wait_hist = nullptr, uint32_t uid = 0)
      : name_(std::move(name)),
        home_worker_(home_worker),
        uid_(uid),
        ledger_(std::move(ledger)),
        queue_wait_hist_(queue_wait_hist) {}

  // Undrained messages at teardown are declared discards in the ledger.
  ~Endpoint() {
    if (ledger_) {
      ledger_->discarded.fetch_add(static_cast<int64_t>(queue_.size()),
                                   std::memory_order_relaxed);
    }
  }

  const std::string& name() const { return name_; }
  int home_worker() const { return home_worker_; }
  // Fabric-assigned creation-order id (0 for endpoints built outside a
  // fabric). Telemetry keys its per-endpoint delivery counts by it; creation
  // order is deterministic, so the ids are stable across same-seed runs.
  uint32_t uid() const { return uid_; }

  // Blocking receive; syncs `vt` to the message availability time.
  // Returns nullopt when the endpoint is closed and drained.
  std::optional<NetMessage> receive(VClock& vt) {
    auto msg = queue_.pop();
    if (msg) {
      if (queue_wait_hist_ != nullptr && TraceRecorder::enabled()) {
        // How long the message sat ready in the mailbox before the receiver
        // got to it (0 when the receiver was already waiting). Gated with
        // the trace probes: the untraced receive pays one branch, nothing
        // else.
        int64_t wait = vt.now_ns() - msg->vt_ready;
        queue_wait_hist_->record(wait > 0 ? wait : 0);
      }
      vt.sync_to(msg->vt_ready);
      count_received();
      if (msg->trace_flow != 0 && TraceRecorder::enabled()) {
        TraceRecorder& tr = TraceRecorder::instance();
        const auto cat = static_cast<TrafficCategory>(msg->trace_cat);
        tr.flow_end(traffic_category_name(cat), msg->trace_flow, vt.now_ns(),
                    msg->iteration, msg->generation);
        int64_t inflight = tr.add_inflight(
            msg->trace_cat, -static_cast<int64_t>(msg->charge_bytes()));
        tr.counter(traffic_inflight_counter_name(cat), vt.now_ns(), inflight);
        tr.counter("queue_depth", vt.now_ns(),
                   static_cast<int64_t>(queue_.size()));
      }
    }
    return msg;
  }

  void close() { queue_.close(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  friend class Fabric;

  void count_received() {
    if (ledger_) ledger_->received.fetch_add(1, std::memory_order_relaxed);
  }

  std::string name_;
  const int home_worker_;
  const uint32_t uid_ = 0;
  std::shared_ptr<detail::ChannelLedger> ledger_;
  Histogram* queue_wait_hist_;  // owned by the fabric's MetricsRegistry
  BlockingQueue<NetMessage> queue_;
};

class Fabric {
 public:
  // `telemetry` (optional) receives a traffic-matrix / per-iteration mirror
  // of every accounted send while the TelemetryRecorder gate is armed; the
  // cluster wires its ledger in, direct constructions stay untelemetered.
  Fabric(const CostModel& cost, MetricsRegistry& metrics,
         TelemetryLedger* telemetry = nullptr)
      : cost_(cost),
        metrics_(metrics),
        telemetry_(telemetry),
        ledger_(std::make_shared<detail::ChannelLedger>()),
        // Histogram references are stable for the registry's lifetime, so
        // the hot paths record through cached pointers, never the registry
        // map.
        batch_bytes_hist_(&metrics.histogram("fabric_batch_bytes")),
        queue_wait_hist_(&metrics.histogram("endpoint_queue_wait_ns")),
        fault_rng_(1) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Arms (or, with drop_rate 0, disarms) transient channel faults for every
  // subsequent send on this fabric. Chaos runs arm faults before the job's
  // threads start, so the armed flag is published to them by thread
  // creation; the flag's own ordering can therefore stay relaxed on the
  // send hot path.
  void set_channel_faults(const ChannelFaultConfig& config);

  // Installed once by the cluster before any task runs: packets from a worker
  // the master has declared dead never reach the wire. A zombie task — an old
  // generation racing its Kill message after a recovery — may still execute
  // for a while, but its machine is gone, so its sends are suppressed. They
  // stay on the ledger as drops so conservation reconciles, and never count
  // as traffic; this is what keeps the reduce->map channel at zero remote
  // bytes even through cascading recoveries. Master sends (sender_worker -1)
  // are never suppressed.
  void set_liveness_probe(std::function<bool(int)> probe) {
    liveness_ = std::move(probe);
  }

  // Snapshot of the cumulative message ledger (see InvariantChecker).
  ChannelStats channel_stats() const;

  // Creates and registers an endpoint. Replaces any previous endpoint with
  // the same name (engines re-create mailboxes between jobs and on task
  // migration).
  std::shared_ptr<Endpoint> create_endpoint(const std::string& name,
                                            int home_worker);
  std::shared_ptr<Endpoint> find(const std::string& name) const;
  void remove_endpoint(const std::string& name);
  // Number of registered endpoints (leak checks in tests).
  std::size_t endpoint_count() const;

  // Sends `msg` from a task homed on `sender_worker` whose clock is `vt`.
  // Charges the sender and stamps msg.vt_ready.
  void send(int sender_worker, VClock& vt, Endpoint& to, NetMessage msg,
            TrafficCategory category);

  // Convenience: send the same payload to many endpoints (reduce->map
  // broadcast, §5.1). Each copy is charged separately, but all T enqueued
  // messages share msg's one records buffer.
  void broadcast(int sender_worker, VClock& vt,
                 const std::vector<std::shared_ptr<Endpoint>>& to,
                 const NetMessage& msg, TrafficCategory category);

  // Aggregated exchange (DESIGN.md §9): deliver ONE payload to several
  // endpoints that are all homed on the SAME worker. The first endpoint is
  // charged the full payload (the one wire transfer); each sibling copy is
  // charged zero — the in-memory hand-off after the batch has landed on the
  // worker. All copies share the records buffer. Checks that the
  // destinations agree on a home worker.
  void send_coalesced(int sender_worker, VClock& vt,
                      const std::vector<std::shared_ptr<Endpoint>>& to,
                      const NetMessage& msg, TrafficCategory category);

 private:
  const CostModel& cost_;
  MetricsRegistry& metrics_;
  TelemetryLedger* telemetry_;  // may be null; gated per send
  std::atomic<uint32_t> next_endpoint_uid_{1};
  std::function<bool(int)> liveness_;  // set before any concurrency
  std::shared_ptr<detail::ChannelLedger> ledger_;
  Histogram* batch_bytes_hist_;
  Histogram* queue_wait_hist_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_;

  // Fast-path flag: send() consults the fault config (and its mutex) only
  // when armed. Disarmed sends — every production run — stay lock-free.
  std::atomic<bool> faults_armed_{false};
  std::mutex fault_mu_;
  ChannelFaultConfig faults_;
  Rng fault_rng_;
};

}  // namespace imr
