// net::Fabric — message passing between tasks with virtual-time costing.
//
// An Endpoint is a named mailbox owned by a task and homed on a worker.
// Senders pay the serialization time (bytes / bandwidth) on their own virtual
// clock — consecutive sends from one task serialize, like a NIC — and the
// message becomes available at the receiver at `sender-finish + latency`.
// Receivers sync their clock forward to each message's ready time, so a
// barrier over many senders is automatically max() over their finish times.
//
// Local delivery (sender and receiver homed on the same worker) is charged at
// memory bandwidth and does not count as remote traffic — this is exactly the
// saving iMapReduce gets from co-locating each reduce task with its paired
// map task (§3.2.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/blocking_queue.h"
#include "common/bytes.h"
#include "common/sim_time.h"
#include "metrics/metrics.h"

namespace imr {

struct NetMessage {
  enum class Kind { kData, kEos, kControl };

  Kind kind = Kind::kData;
  int64_t vt_ready = 0;  // virtual time of availability at the receiver
  int from_task = -1;    // engine-level sender id (task index, or -1 master)
  int iteration = 0;     // iterative protocols tag batches by iteration
  int generation = 0;    // job generation; receivers drop stale-generation
                         // data after a rollback (§3.4)
  KVVec records;         // data payload
  Bytes control;         // control payload

  std::size_t payload_bytes() const {
    // 32 bytes of framing/header per message.
    return wire_size(records) + control.size() + 32;
  }
};

// A mailbox. Created via Fabric so that delivery can be costed.
class Endpoint {
 public:
  Endpoint(std::string name, int home_worker)
      : name_(std::move(name)), home_worker_(home_worker) {}

  const std::string& name() const { return name_; }
  int home_worker() const { return home_worker_.load(); }
  // Tasks migrate between workers (§3.4.2); their mailbox moves with them.
  void set_home_worker(int w) { home_worker_.store(w); }

  // Blocking receive; syncs `vt` to the message availability time.
  // Returns nullopt when the endpoint is closed and drained.
  std::optional<NetMessage> receive(VClock& vt) {
    auto msg = queue_.pop();
    if (msg) vt.sync_to(msg->vt_ready);
    return msg;
  }

  std::optional<NetMessage> try_receive(VClock& vt) {
    auto msg = queue_.try_pop();
    if (msg) vt.sync_to(msg->vt_ready);
    return msg;
  }

  void close() { queue_.close(); }
  // Discard stale traffic and reopen (task rollback).
  void reset() { queue_.reset(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  friend class Fabric;
  std::string name_;
  std::atomic<int> home_worker_;
  BlockingQueue<NetMessage> queue_;
};

class Fabric {
 public:
  Fabric(const CostModel& cost, MetricsRegistry& metrics)
      : cost_(cost), metrics_(metrics) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Creates and registers an endpoint. Replaces any previous endpoint with
  // the same name (engines re-create mailboxes between jobs).
  std::shared_ptr<Endpoint> create_endpoint(const std::string& name,
                                            int home_worker);
  std::shared_ptr<Endpoint> find(const std::string& name) const;
  void remove_endpoint(const std::string& name);

  // Sends `msg` from a task homed on `sender_worker` whose clock is `vt`.
  // Charges the sender and stamps msg.vt_ready.
  void send(int sender_worker, VClock& vt, Endpoint& to, NetMessage msg,
            TrafficCategory category);

  // Convenience: send the same payload to many endpoints (reduce->map
  // broadcast, §5.1). Each copy is charged separately.
  void broadcast(int sender_worker, VClock& vt,
                 const std::vector<std::shared_ptr<Endpoint>>& to,
                 const NetMessage& msg, TrafficCategory category);

 private:
  const CostModel& cost_;
  MetricsRegistry& metrics_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_;
};

}  // namespace imr
