#include "net/fabric.h"

#include "common/error.h"

namespace imr {

std::shared_ptr<Endpoint> Fabric::create_endpoint(const std::string& name,
                                                  int home_worker) {
  auto ep = std::make_shared<Endpoint>(name, home_worker);
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[name] = ep;
  return ep;
}

std::shared_ptr<Endpoint> Fabric::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) throw Error("no such endpoint: " + name);
  return it->second;
}

void Fabric::remove_endpoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(name);
}

void Fabric::send(int sender_worker, VClock& vt, Endpoint& to, NetMessage msg,
                  TrafficCategory category) {
  std::size_t bytes = msg.payload_bytes();
  bool local = (sender_worker == to.home_worker());

  double bw = local ? cost_.local_bandwidth : cost_.net_bandwidth;
  SimDuration latency = local ? cost_.local_latency : cost_.net_latency;

  // Sender pays serialization onto the wire.
  SimDuration ser = transfer_time(bytes, bw);
  vt.advance(ser);
  metrics_.add_time(TimeCategory::kNetwork, ser + latency);
  metrics_.add_traffic(category, bytes, /*remote=*/!local);

  msg.vt_ready = vt.now_ns() + latency.count();
  to.queue_.push(std::move(msg));
}

void Fabric::broadcast(int sender_worker, VClock& vt,
                       const std::vector<std::shared_ptr<Endpoint>>& to,
                       const NetMessage& msg, TrafficCategory category) {
  for (const auto& ep : to) {
    send(sender_worker, vt, *ep, msg, category);
  }
}

}  // namespace imr
