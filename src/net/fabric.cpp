#include "net/fabric.h"

#include "common/error.h"
#include "metrics/telemetry.h"

namespace imr {

std::shared_ptr<Endpoint> Fabric::create_endpoint(const std::string& name,
                                                  int home_worker) {
  auto ep = std::make_shared<Endpoint>(
      name, home_worker, ledger_, queue_wait_hist_,
      next_endpoint_uid_.fetch_add(1, std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[name] = ep;
  return ep;
}

std::shared_ptr<Endpoint> Fabric::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) throw Error("no such endpoint: " + name);
  return it->second;
}

void Fabric::remove_endpoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(name);
}

std::size_t Fabric::endpoint_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.size();
}

void Fabric::set_channel_faults(const ChannelFaultConfig& config) {
  IMR_CHECK_MSG(config.drop_rate >= 0 && config.drop_rate < 1.0,
                "drop_rate must be in [0, 1)");
  IMR_CHECK_MSG(config.max_attempts >= 1, "need at least one attempt");
  IMR_CHECK_MSG(config.backoff_factor >= 1.0, "backoff must not shrink");
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    faults_ = config;
    fault_rng_ = Rng(config.seed);
  }
  faults_armed_.store(config.drop_rate > 0, std::memory_order_release);
}

ChannelStats Fabric::channel_stats() const {
  ChannelStats s;
  s.attempts = ledger_->attempts.load();
  s.delivered = ledger_->delivered.load();
  s.dropped = ledger_->dropped.load();
  s.rejected = ledger_->rejected.load();
  s.received = ledger_->received.load();
  s.discarded = ledger_->discarded.load();
  return s;
}

void Fabric::send(int sender_worker, VClock& vt, Endpoint& to, NetMessage msg,
                  TrafficCategory category) {
  if (sender_worker >= 0 && liveness_ && !liveness_(sender_worker)) {
    // Zombie send: the sender's machine is already declared dead, so nothing
    // reaches the wire. Ledger-accounted as a drop, charged to nobody.
    ledger_->attempts.fetch_add(1, std::memory_order_relaxed);
    ledger_->dropped.fetch_add(1, std::memory_order_relaxed);
    metrics_.inc("net_zombie_sends");
    return;
  }
  std::size_t bytes = msg.charge_bytes();
  bool local = (sender_worker == to.home_worker());

  double bw = local ? cost_.local_bandwidth : cost_.net_bandwidth;
  SimDuration latency = local ? cost_.local_latency : cost_.net_latency;
  SimDuration ser = transfer_time(bytes, bw);

  // Transient channel faults (chaos mode): drop attempts before the last
  // permitted one; each drop pays the wasted wire time plus the detection
  // timeout, with bounded exponential backoff between retries. The dropped
  // bytes never count as delivered traffic — they live in the ledger and the
  // named drop counters instead. With faults disarmed (every production
  // run), one relaxed load skips all of this — no lock, no config copy; the
  // seeded slow path is byte-for-byte the old behavior, so chaos runs stay
  // deterministic.
  if (faults_armed_.load(std::memory_order_relaxed)) {
    ChannelFaultConfig faults;
    int drops = 0;
    {
      // One lock scope per send: snapshot the config AND draw every retry's
      // drop from it, instead of re-acquiring fault_mu_ (and re-reading
      // faults_) once per attempt. The draws stay lazy — one uniform per
      // attempt, stopping at the first non-drop — so a same-seed run consumes
      // fault_rng_ in exactly the order the per-attempt draw_drop() did.
      std::lock_guard<std::mutex> lock(fault_mu_);
      faults = faults_;
      if (faults.drop_rate > 0) {
        while (drops + 1 < faults.max_attempts &&
               fault_rng_.uniform_real(0.0, 1.0) < faults.drop_rate) {
          ++drops;
        }
      }
    }
    SimDuration backoff = faults.retry_timeout;
    for (int i = 0; i < drops; ++i) {
      ledger_->attempts.fetch_add(1, std::memory_order_relaxed);
      ledger_->dropped.fetch_add(1, std::memory_order_relaxed);
      vt.advance(ser + backoff);
      metrics_.add_time(TimeCategory::kNetwork, ser);
      metrics_.inc("net_dropped_sends");
      metrics_.inc("net_dropped_bytes", static_cast<int64_t>(bytes));
      metrics_.inc("net_retries");
      backoff = std::min(
          SimDuration(static_cast<int64_t>(
              static_cast<double>(backoff.count()) * faults.backoff_factor)),
          faults.max_backoff);
    }
  }

  // Sender pays serialization onto the wire.
  vt.advance(ser);
  metrics_.add_time(TimeCategory::kNetwork, ser + latency);
  metrics_.add_traffic(category, bytes, /*remote=*/!local);

  // Telemetry mirror of the add_traffic charge just made: the traffic
  // matrix cell plus the message's (generation, iteration) bucket. Same
  // cost discipline as the trace gate — a null-pointer test and one relaxed
  // load when disabled. Placed before the queue push so rejected sends are
  // mirrored exactly like the registry charges them.
  if (telemetry_ != nullptr && TelemetryRecorder::enabled()) {
    telemetry_->add_send(sender_worker, to.home_worker(), category,
                         static_cast<int64_t>(bytes), msg.generation,
                         msg.iteration, to.uid());
  }

  // Stamp the flow id before the message is moved into the queue; the start
  // event is recorded only AFTER a successful push, so a rejected send never
  // draws an arrow (a flow_start whose message is later discarded unread is
  // legal — Perfetto renders it as an arrow to nowhere). The batch-size
  // histogram shares the gate: per-message distribution sampling is part of
  // the tracing substrate's cost budget, not the untraced send's.
  const bool traced = TraceRecorder::enabled();
  uint64_t flow = 0;
  int msg_iter = 0, msg_gen = 0;
  if (traced) {
    batch_bytes_hist_->record(static_cast<int64_t>(bytes));
    flow = TraceRecorder::instance().next_flow_id();
    msg.trace_flow = flow;
    msg.trace_cat = static_cast<uint8_t>(category);
    msg_iter = msg.iteration;
    msg_gen = msg.generation;
  }

  msg.vt_ready = vt.now_ns() + latency.count();
  ledger_->attempts.fetch_add(1, std::memory_order_relaxed);
  if (to.queue_.push(std::move(msg))) {
    ledger_->delivered.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      TraceRecorder& tr = TraceRecorder::instance();
      tr.flow_start(traffic_category_name(category), flow, vt.now_ns(),
                    msg_iter, msg_gen);
      int64_t inflight = tr.add_inflight(static_cast<int>(category),
                                         static_cast<int64_t>(bytes));
      tr.counter(traffic_inflight_counter_name(category), vt.now_ns(),
                 inflight);
    }
  } else {
    // Late producer racing a closed mailbox (termination/rollback): the
    // message is dropped by design, but it stays on the ledger.
    ledger_->rejected.fetch_add(1, std::memory_order_relaxed);
  }
}

void Fabric::broadcast(int sender_worker, VClock& vt,
                       const std::vector<std::shared_ptr<Endpoint>>& to,
                       const NetMessage& msg, TrafficCategory category) {
  // With more than one destination the enqueued copies share msg's records
  // buffer; mark them so take_records never mutates it (siblings may be
  // reading concurrently). A single-destination "broadcast" keeps the
  // point-to-point move semantics.
  const bool fan_out = to.size() > 1;
  for (const auto& ep : to) {
    NetMessage copy = msg;
    if (fan_out) copy.mark_payload_shared();
    send(sender_worker, vt, *ep, std::move(copy), category);
  }
}

void Fabric::send_coalesced(int sender_worker, VClock& vt,
                            const std::vector<std::shared_ptr<Endpoint>>& to,
                            const NetMessage& msg, TrafficCategory category) {
  IMR_CHECK_MSG(!to.empty(), "coalesced send needs >= 1 destination");
  const int home = to.front()->home_worker();
  for (const auto& ep : to) {
    IMR_CHECK_MSG(ep->home_worker() == home,
                  "coalesced destinations must share a home worker");
  }
  // Reuses send() end to end (fault machinery, ledger, telemetry, tracing):
  // the first copy carries the default full charge, siblings override it to
  // zero — the wire transfer was already paid in full by the first copy.
  // Payload sharing follows the broadcast discipline so take_records never
  // mutates a buffer a sibling may still read.
  const bool fan_out = to.size() > 1;
  bool first = true;
  for (const auto& ep : to) {
    NetMessage copy = msg;
    if (fan_out) copy.mark_payload_shared();
    if (!first) copy.charge_override = 0;
    send(sender_worker, vt, *ep, std::move(copy), category);
    first = false;
  }
}

}  // namespace imr
