// Jacobi linear solver (§5.1's broadcast generalization beyond K-means).
//
// Solves a sparse diagonally-dominant system Ax = b iteratively: the matrix
// rows are static data partitioned across map tasks, the solution vector is
// the state broadcast one-to-all from reduce tasks to map tasks each
// iteration, and the run terminates when the Manhattan distance between
// consecutive solution vectors drops below a threshold.
#include <cmath>
#include <cstdio>

#include "algorithms/jacobi.h"
#include "bench_util/harness.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"

using namespace imr;

int main() {
  JacobiSystem sys = Jacobi::generate(/*n=*/2000, /*density=*/0.01,
                                      /*seed=*/11);
  std::printf("system: %u unknowns, ~%.0f nonzeros/row\n", sys.n,
              0.01 * sys.n);

  Cluster cluster(bench::local_cluster_preset());
  Jacobi::setup(cluster, sys, "jac");

  // Chain-of-jobs baseline: x is distributed to every map task of every job
  // through the distributed-cache equivalent, rows are re-read per job.
  IterativeDriver driver(cluster);
  RunReport mr = driver.run(Jacobi::baseline("jac", "work", 100, 1e-9));

  // iMapReduce: rows loaded once, x broadcast reduce->map in-memory.
  IterativeEngine engine(cluster);
  RunReport imr = engine.run(Jacobi::imapreduce("jac", "out", 100, 1e-9));

  std::printf("\nMapReduce:  %2d iterations, %8.1f virtual s\n",
              mr.iterations_run, mr.total_wall_ms / 1e3);
  std::printf("iMapReduce: %2d iterations, %8.1f virtual s (%.2fx)\n",
              imr.iterations_run, imr.total_wall_ms / 1e3,
              mr.total_wall_ms / imr.total_wall_ms);

  // Residual of the converged solution.
  auto x = Jacobi::read_result(cluster, "out", sys.n);
  double max_residual = 0;
  for (uint32_t i = 0; i < sys.n; ++i) {
    double lhs = sys.diag[i] * x[i];
    for (const WEdge& e : sys.off_diag[i]) lhs += e.weight * x[e.dst];
    max_residual = std::max(max_residual, std::abs(lhs - sys.b[i]));
  }
  std::printf("max |Ax - b| = %.3e\n", max_residual);
  return max_residual < 1e-6 ? 0 : 1;
}
