// PageRank over a synthetic web graph (the paper's §2.1.2 workload).
//
// Demonstrates:
//   - the iMapReduce job parameters from §3.5 (statepath, staticpath,
//     maxiter, disthresh) expressed through IterJobConf,
//   - distance-threshold termination (Manhattan distance < 0.01, as in the
//     paper's Fig. 3 example),
//   - the communication-cost advantage over the chain-of-jobs baseline.
#include <algorithm>
#include <cstdio>

#include "algorithms/pagerank.h"
#include "bench_util/harness.h"
#include "common/strings.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"

using namespace imr;

int main() {
  // A Google-webgraph-shaped synthetic (log-normal out-degrees, sigma = 2).
  Graph g = make_pagerank_graph("google", /*scale=*/0.02, /*seed=*/7);
  std::printf("web graph: %u pages, %llu links (%s on DFS)\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              human_bytes(g.file_bytes()).c_str());

  Cluster cluster(bench::local_cluster_preset(/*data_scale=*/50.0));
  PageRank::setup(cluster, g, "pr");

  // --- chain-of-jobs baseline with a convergence-check job per iteration ---
  cluster.metrics().reset();
  IterativeDriver driver(cluster);
  RunReport mr = driver.run(
      PageRank::baseline("pr", "work", g.num_nodes(), 50, /*threshold=*/0.01));
  int64_t mr_comm = cluster.metrics().total_remote_bytes();

  // --- iMapReduce, same termination rule built into the framework ---
  cluster.metrics().reset();
  IterativeEngine engine(cluster);
  RunReport imr = engine.run(
      PageRank::imapreduce("pr", "out", g.num_nodes(), 50, 0.01));
  int64_t imr_comm = cluster.metrics().total_remote_bytes();

  std::printf("\nMapReduce:  %2d iterations, %7.1f virtual s, %s moved\n",
              mr.iterations_run, mr.total_wall_ms / 1e3,
              human_bytes(static_cast<std::size_t>(mr_comm)).c_str());
  std::printf("iMapReduce: %2d iterations, %7.1f virtual s, %s moved\n",
              imr.iterations_run, imr.total_wall_ms / 1e3,
              human_bytes(static_cast<std::size_t>(imr_comm)).c_str());
  std::printf("speedup: %.2fx   communication: %.1f%% of baseline\n",
              mr.total_wall_ms / imr.total_wall_ms,
              100.0 * static_cast<double>(imr_comm) /
                  static_cast<double>(mr_comm));

  // Top pages by rank.
  auto ranks = PageRank::read_result_imr(cluster, "out", g.num_nodes());
  std::vector<uint32_t> order(g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) order[u] = u;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](uint32_t a, uint32_t b) { return ranks[a] > ranks[b]; });
  std::printf("\ntop pages:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  page %u: rank %.6f\n", order[static_cast<std::size_t>(i)],
                ranks[order[static_cast<std::size_t>(i)]]);
  }
  return 0;
}
