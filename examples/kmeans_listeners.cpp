// K-means clustering of synthetic listener "taste vectors" (the paper's §5.1
// Last.fm workload, substituted per DESIGN.md).
//
// Demonstrates the §5 extensions in one program:
//   - one-to-all broadcast from reduce tasks to map tasks,
//   - the map-side Combiner variant (§5.1.3),
//   - the auxiliary map-reduce phase for convergence detection (§5.3):
//     the job stops when fewer than a threshold of users switch cluster.
#include <cstdio>

#include "algorithms/kmeans.h"
#include "bench_util/harness.h"
#include "imapreduce/engine.h"

using namespace imr;

int main() {
  KMeansDataSpec spec;
  spec.num_points = 20000;  // listeners
  spec.dim = 12;            // taste dimensions
  spec.num_clusters = 8;    // genres
  spec.spread = 0.08;
  spec.seed = 2026;
  auto points = KMeans::generate_points(spec);
  std::printf("dataset: %u listeners, %d taste dimensions\n", spec.num_points,
              spec.dim);

  Cluster cluster(bench::local_cluster_preset(/*data_scale=*/18.0));
  KMeans::setup(cluster, points, spec.num_clusters, "km");
  IterativeEngine engine(cluster);

  // Fixed 10 iterations, with and without a Combiner.
  cluster.metrics().reset();
  RunReport plain = engine.run(KMeans::imapreduce("km", "out1", 10));
  int64_t plain_shuffle =
      cluster.metrics().traffic_bytes(TrafficCategory::kShuffle);

  cluster.metrics().reset();
  RunReport combined = engine.run(
      KMeans::imapreduce("km", "out2", 10, -1.0, /*with_combiner=*/true));
  int64_t comb_shuffle =
      cluster.metrics().traffic_bytes(TrafficCategory::kShuffle);

  std::printf("\nwithout combiner: %.1f virtual s, shuffle %.1f MB\n",
              plain.total_wall_ms / 1e3,
              static_cast<double>(plain_shuffle) / 1e6);
  std::printf("with combiner:    %.1f virtual s, shuffle %.1f MB (-%.0f%%)\n",
              combined.total_wall_ms / 1e3,
              static_cast<double>(comb_shuffle) / 1e6,
              100.0 * (1.0 - static_cast<double>(comb_shuffle) /
                                 static_cast<double>(plain_shuffle)));

  // Auxiliary convergence detection: stop when < 20 listeners move.
  cluster.metrics().reset();
  RunReport aux = engine.run(
      KMeans::imapreduce_with_aux("km", "out3", 40, /*move_threshold=*/20));
  std::printf(
      "\nauxiliary convergence detection: stopped after %d iterations "
      "(converged=%s)\n",
      aux.iterations_run, aux.converged ? "yes" : "no");

  auto centroids = KMeans::read_result(cluster, "out3", false);
  std::printf("final centroids: %zu clusters\n", centroids.size());
  for (const auto& [cid, c] : centroids) {
    std::printf("  cluster %u: (%.3f, %.3f, ...)\n", cid, c[0], c[1]);
  }
  return 0;
}
