// Quickstart: the smallest possible iMapReduce program.
//
// Computes single-source shortest paths over a tiny hand-written road
// network, first with the classic chain-of-jobs MapReduce driver and then
// with iMapReduce, and shows the speedup and the per-iteration convergence
// distance. Mirrors the paper's Fig. 3 program structure: map + reduce +
// distance, statepath/staticpath, maxiter, disthresh.
#include <cstdio>

#include "algorithms/sssp.h"
#include "bench_util/harness.h"
#include "graph/formats.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"

using namespace imr;

int main() {
  // A small weighted road network in the framework's text format:
  // "node<TAB>neighbor:weight,..."
  const char* road_network =
      "0\t1:2.0,2:5.0\n"
      "1\t2:1.0,3:4.0\n"
      "2\t3:1.0,4:7.0\n"
      "3\t4:1.0,5:3.0\n"
      "4\t5:1.0\n"
      "5\t\n"
      "6\t0:1.0\n";  // node 6 feeds the source; nothing reaches it
  Graph g = parse_adjacency_text(road_network, /*weighted=*/true);
  std::printf("graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // A 4-worker in-process cluster with the paper-calibrated cost model.
  Cluster cluster(bench::local_cluster_preset());

  // Write the initial state (distances), static data (adjacency), and the
  // baseline's joined records to the DFS.
  Sssp::setup(cluster, g, /*source=*/0, "sssp");

  // --- classic MapReduce: one job per iteration + a convergence-check job ---
  IterativeDriver driver(cluster);
  RunReport mr = driver.run(Sssp::baseline("sssp", "work",
                                           /*max_iterations=*/20,
                                           /*threshold=*/0.5));
  std::printf("\nMapReduce baseline:  %d iterations, %.1f virtual s\n",
              mr.iterations_run, mr.total_wall_ms / 1e3);

  // --- iMapReduce: one persistent job, same termination rule ---
  IterativeEngine engine(cluster);
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 20, 0.5);
  RunReport imr = engine.run(conf);
  std::printf("iMapReduce:          %d iterations, %.1f virtual s  (%.2fx)\n",
              imr.iterations_run, imr.total_wall_ms / 1e3,
              mr.total_wall_ms / imr.total_wall_ms);

  std::printf("\nper-iteration distance (changed nodes):\n");
  for (const IterationStat& it : imr.iterations) {
    std::printf("  iteration %d: %.0f\n", it.iteration, it.distance);
  }

  std::printf("\nshortest distances from node 0:\n");
  auto dist = Sssp::read_result_imr(cluster, "out", g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    if (std::isinf(dist[u])) {
      std::printf("  node %u: unreachable\n", u);
    } else {
      std::printf("  node %u: %.1f\n", u, dist[u]);
    }
  }
  return 0;
}
