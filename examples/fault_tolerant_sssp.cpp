// Runtime support demo (§3.4): checkpoint-based fault tolerance and
// report-driven load balancing on a heterogeneous cluster.
//
// Runs SSSP over a social-network-shaped graph on 8 workers, kills one worker
// mid-run (the master rolls everyone back to the last checkpoint and respawns
// the lost task pair elsewhere), and slows another worker down (the master
// migrates its task pair to the fastest worker). The final distances are
// verified against a failure-free sequential computation.
#include <cstdio>

#include "algorithms/sssp.h"
#include "bench_util/harness.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"

using namespace imr;

int main() {
  Graph g = make_sssp_graph("facebook", /*scale=*/0.01, /*seed=*/5);
  std::printf("social graph: %u users, %llu ties\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  ClusterConfig config = bench::ec2_preset(8, /*data_scale=*/100.0);
  Cluster cluster(config);
  Sssp::setup(cluster, g, /*source=*/0, "sssp");

  // Heterogeneity: worker 3 runs at 20% speed (an overloaded neighbor VM).
  cluster.set_worker_speed(3, 0.2);
  // Failure injection: worker 5 dies when its tasks finish iteration 6.
  cluster.schedule_worker_failure(5, 6);

  IterJobConf conf = Sssp::imapreduce("sssp", "out", /*max_iterations=*/12);
  conf.checkpoint_every = 2;   // dump state every 2 iterations (§3.4.1)
  conf.load_balancing = true;  // migrate away from slow workers (§3.4.2)
  conf.migration_threshold = 0.5;

  IterativeEngine engine(cluster);
  RunReport report = engine.run(conf);

  std::printf("\nrun finished: %d iterations, %.1f virtual s\n",
              report.iterations_run, report.total_wall_ms / 1e3);
  std::printf("checkpoints written:   %lld\n",
              static_cast<long long>(cluster.metrics().count("imr_checkpoints")));
  std::printf("failures recovered:    %lld\n",
              static_cast<long long>(cluster.metrics().count("imr_recoveries")));
  std::printf("task pairs migrated:   %lld\n",
              static_cast<long long>(cluster.metrics().count("imr_migrations")));
  std::printf("worker 5 alive:        %s\n",
              cluster.worker_alive(5) ? "yes" : "no");

  // Verify the recovered run still computed the right answer.
  auto result = Sssp::read_result_imr(cluster, "out", g.num_nodes());
  auto expected = Sssp::reference(g, 0, report.iterations_run);
  std::size_t mismatches = 0;
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    bool both_inf = std::isinf(expected[u]) && std::isinf(result[u]);
    if (!both_inf && expected[u] != result[u]) ++mismatches;
  }
  std::printf("result check:          %s (%zu mismatches)\n",
              mismatches == 0 ? "EXACT" : "BROKEN", mismatches);
  return mismatches == 0 ? 0 : 1;
}
