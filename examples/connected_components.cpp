// Connected components over a social graph — min-label propagation with
// distance-based termination (stop when no node changes its label).
//
// Also demonstrates the CLI-style metrics report: how many iterations the
// propagation needed, and how little data iMapReduce moved compared with the
// baseline.
#include <algorithm>
#include <cstdio>
#include <map>

#include "algorithms/concomp.h"
#include "bench_util/harness.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"

using namespace imr;

int main() {
  Graph g = make_sssp_graph("facebook", /*scale=*/0.02, /*seed=*/12);
  std::printf("social graph: %u users, %llu ties\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  Cluster cluster(bench::local_cluster_preset(/*data_scale=*/50.0));
  ConComp::setup(cluster, g, "cc");

  cluster.metrics().reset();
  IterativeDriver driver(cluster);
  RunReport mr = driver.run(ConComp::baseline("cc", "work", 100, 0.5));
  int64_t mr_comm = cluster.metrics().total_remote_bytes();

  cluster.metrics().reset();
  IterativeEngine engine(cluster);
  RunReport imr = engine.run(ConComp::imapreduce("cc", "out", 100, 0.5));
  int64_t imr_comm = cluster.metrics().total_remote_bytes();

  std::printf("\nMapReduce:  %2d iterations, %8.1f virtual s\n",
              mr.iterations_run, mr.total_wall_ms / 1e3);
  std::printf("iMapReduce: %2d iterations, %8.1f virtual s (%.2fx, %.0f%% of "
              "the communication)\n",
              imr.iterations_run, imr.total_wall_ms / 1e3,
              mr.total_wall_ms / imr.total_wall_ms,
              100.0 * static_cast<double>(imr_comm) /
                  static_cast<double>(mr_comm));

  auto labels = ConComp::read_result_imr(cluster, "out", g.num_nodes());
  auto expected = ConComp::reference(g);
  std::printf("exact agreement with union-find: %s\n",
              labels == expected ? "yes" : "NO");

  std::map<uint32_t, uint32_t> sizes;
  for (uint32_t l : labels) ++sizes[l];
  std::vector<uint32_t> counts;
  counts.reserve(sizes.size());
  for (const auto& [l, n] : sizes) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  std::printf("components: %zu; largest: %u users (%.1f%%)\n", sizes.size(),
              counts[0], 100.0 * counts[0] / g.num_nodes());
  return labels == expected ? 0 : 1;
}
