// Figure 12: speedup over the Hadoop implementation for SSSP when scaling
// the cluster from 20 to 80 instances (sssp-l, 10 iterations).
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 12", "SSSP scaling: cluster size 20 -> 50 -> 80");
  Graph g = make_sssp_graph("sssp-l", kSyntheticScale, kSeed);
  note(dataset_line("sssp-l", g));

  TextTable table({"instances", "MapReduce (s)", "iMapReduce (s)",
                   "iMR/MR ratio"});
  double first_ratio = 0, last_ratio = 0;
  for (int n : {20, 50, 80}) {
    Cluster cluster(ec2_preset(n, kSyntheticDataScale));
    FourWay r = run_sssp_fourway(cluster, g, "sssp_l", 10, true);
    double ratio = r.imr.total_wall_ms / r.mr.total_wall_ms;
    if (n == 20) first_ratio = ratio;
    last_ratio = ratio;
    table.add_row({std::to_string(n), fmt_double(r.mr.total_wall_ms / 1e3, 1),
                   fmt_double(r.imr.total_wall_ms / 1e3, 1),
                   fmt_pct(r.imr.total_wall_ms, r.mr.total_wall_ms)});
  }
  print_table(table);
  expectation(
      "the iMR/MR running time ratio improves by ~8% from 20 to 80 instances "
      "(more network communication on bigger clusters => more advantage)",
      "ratio change " + fmt_double(100 * (first_ratio - last_ratio), 1) +
          " percentage points (20 -> 80)");

  // Bulk-vs-workset A/B (DESIGN.md §7): the same job run to convergence in
  // both modes. Bulk maps all records every iteration; workset maps only the
  // frontier, so the tail iterations — where few shortest paths still move —
  // collapse to a sliver of the state.
  note("");
  note("bulk vs workset A/B (run to convergence):");
  TextTable ab({"instances", "bulk (s)", "workset (s)", "iters",
                "mapped bulk", "mapped ws", "tail bulk", "tail ws",
                "tail ratio"});
  double min_tail_ratio = -1;
  for (int n : {20, 50, 80}) {
    WorksetAB r = run_sssp_workset_ab(ec2_preset(n, kSyntheticDataScale), g,
                                      "sssp_l_ab", 50);
    double tail_ratio = r.tail_ws > 0
                            ? static_cast<double>(r.tail_bulk) / r.tail_ws
                            : static_cast<double>(r.tail_bulk);
    if (min_tail_ratio < 0 || tail_ratio < min_tail_ratio) {
      min_tail_ratio = tail_ratio;
    }
    ab.add_row({std::to_string(n), fmt_double(r.bulk.total_wall_ms / 1e3, 1),
                fmt_double(r.ws.total_wall_ms / 1e3, 1),
                std::to_string(r.bulk.iterations_run) + "/" +
                    std::to_string(r.ws.iterations_run),
                human_count(r.bulk_mapped), human_count(r.ws_mapped),
                human_count(r.tail_bulk), human_count(r.tail_ws),
                fmt_double(tail_ratio, 1) + "x"});
  }
  print_table(ab);
  expectation(
      "workset tail iterations map >=5x fewer records than bulk (the "
      "frontier has drained to the last shortest-path corrections)",
      "min tail ratio " + fmt_double(min_tail_ratio, 1) + "x");
  return 0;
}
