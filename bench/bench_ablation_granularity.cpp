// Ablation A4: persistent-task granularity (§3.1.1).
//
// Persistent tasks must all start up front, so their count is bounded by the
// cluster's slots; the paper notes the granularity therefore must be coarser
// than classic MapReduce's fine-grained waves and that this "might make load
// balancing challenging". This sweep shows both effects: too few pairs waste
// slots (parallelism), while the maximum slot-filling count matches the
// baseline's effective parallelism.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Ablation A4", "persistent task-pair granularity sweep (EC2-20)");
  Graph g = make_sssp_graph("sssp-m", kSyntheticScale, kSeed);
  note(dataset_line("sssp-m", g));

  // Baseline reference at full slot usage.
  double mr_ms = 0;
  {
    Cluster cluster(ec2_preset(20, kSyntheticDataScale));
    Sssp::setup(cluster, g, 0, "sssp");
    IterativeDriver driver(cluster);
    mr_ms = driver.run(Sssp::baseline("sssp", "work", 10)).total_wall_ms;
  }
  TextTable table({"task pairs", "iMapReduce (s)", "vs MapReduce(no check)"});
  for (int tasks : {5, 10, 20, 40}) {
    Cluster cluster(ec2_preset(20, kSyntheticDataScale));
    Sssp::setup(cluster, g, 0, "sssp");
    IterJobConf conf = Sssp::imapreduce("sssp", "out", 10);
    conf.num_tasks = tasks;
    IterativeEngine engine(cluster);
    RunReport r = engine.run(conf);
    table.add_row({std::to_string(tasks),
                   fmt_double(r.total_wall_ms / 1e3, 1),
                   fmt_pct(r.total_wall_ms, mr_ms)});
  }
  print_table(table);
  note("expected: running time falls until the pairs fill the slots "
       "(20 workers x 2 slots = 40); fewer pairs leave slots idle");
  return 0;
}
