// Figure 14: parallel efficiencies of iMapReduce and MapReduce for SSSP and
// PageRank: T* / (T_n x n) for n in {20, 50, 80}, where T* is the
// single-instance running time (partition number one, no communication).
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

namespace {

struct EffRow {
  int n;
  double mr_eff;
  double imr_eff;
};

template <typename RunFn>
std::vector<EffRow> efficiencies(RunFn&& run) {
  // T*: one instance, one task pair.
  double mr_star, imr_star;
  {
    Cluster single(ec2_preset(1, kSyntheticDataScale));
    FourWay r = run(single);
    mr_star = r.mr.total_wall_ms;
    imr_star = r.imr.total_wall_ms;
  }
  std::vector<EffRow> rows;
  for (int n : {20, 50, 80}) {
    Cluster cluster(ec2_preset(n, kSyntheticDataScale));
    FourWay r = run(cluster);
    rows.push_back(EffRow{n, mr_star / (r.mr.total_wall_ms * n),
                          imr_star / (r.imr.total_wall_ms * n)});
  }
  return rows;
}

void print_eff(const char* workload, const std::vector<EffRow>& rows,
               TextTable& table) {
  for (const EffRow& r : rows) {
    table.add_row({workload, std::to_string(r.n),
                   fmt_double(r.mr_eff, 3), fmt_double(r.imr_eff, 3)});
  }
}

}  // namespace

int main() {
  banner("Figure 14", "Parallel efficiency T*/(T_n x n)");

  TextTable table({"workload", "instances", "MapReduce", "iMapReduce"});

  {
    Graph g = make_sssp_graph("sssp-l", kSyntheticScale, kSeed);
    note(dataset_line("sssp-l", g));
    auto rows = efficiencies([&](Cluster& cluster) {
      return run_sssp_fourway(cluster, g, "sssp_l", 10, true);
    });
    print_eff("SSSP", rows, table);
  }
  {
    Graph g = make_pagerank_graph("pagerank-l", kSyntheticScale, kSeed);
    note(dataset_line("pagerank-l", g));
    auto rows = efficiencies([&](Cluster& cluster) {
      return run_pagerank_fourway(cluster, g, "pr_l", 10, true);
    });
    print_eff("PageRank", rows, table);
  }
  print_table(table);
  expectation(
      "iMapReduce yields higher parallel efficiency than MapReduce for both "
      "workloads; at 80 instances the slowdown is ~60% for MapReduce vs ~43% "
      "for iMapReduce (SSSP)",
      "iMapReduce column should exceed the MapReduce column at every size");
  return 0;
}
