// Placement A/B (DESIGN.md §9): hash partitioning vs BFS region partitioning
// with affinity placement and the aggregated cross-worker exchange, on a
// 16-worker cluster.
//
// The flat hash spreads a graph's vertices uniformly, so on W workers
// ~(W-1)/W of every iteration's shuffle crosses the network. A BFS region
// partitioner keeps each region's internal edges inside one reduce partition
// and the master co-locates the partitions that exchange the most data, so
// only the region-boundary traffic stays remote. Both runs execute the same
// fixed iteration count and the final states are asserted BYTE-IDENTICAL
// before any number is reported — a locality win that changes the answer is
// a bug, not a win.
//
// The acceptance floor (ISSUE 9) is a >= 2x drop in remote shuffle bytes for
// PageRank and SSSP at 16 workers; the measured ratios land far above it on
// the grid graph (area/perimeter scaling). `--json <path>` dumps the
// measurements for scripts/check_bench_regression.py --placement, which
// gates them against the placement_ab series in BENCH_substrate.json.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "bench_common.h"
#include "graph/partition.h"
#include "mapreduce/engine.h"
#include "metrics/table.h"

namespace imr::bench {
namespace {

constexpr int kWorkers = 16;
constexpr int kTasks = 64;  // four task pairs per worker
constexpr int kIterations = 10;
constexpr uint32_t kGridSide = 96;

ClusterConfig placement_cluster() {
  ClusterConfig config;
  config.num_workers = kWorkers;
  config.map_slots_per_worker = 4;
  config.reduce_slots_per_worker = 4;
  config.cost = CostModel::local_cluster();
  return config;
}

Graph bench_graph(bool weighted) {
  GridGraphSpec spec;
  spec.rows = kGridSide;
  spec.cols = kGridSide;
  spec.weighted = weighted;
  spec.seed = kSeed;
  return generate_grid_graph(spec);
}

std::map<Bytes, Bytes> read_state(Cluster& cluster, const std::string& path) {
  std::map<Bytes, Bytes> state;
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      state[kv.key] = kv.value;
    }
  }
  return state;
}

struct Measurement {
  int64_t shuffle_remote = 0;
  int64_t agg_remote = 0;
  int64_t total_remote() const { return shuffle_remote + agg_remote; }
  std::map<Bytes, Bytes> state;
};

struct AB {
  const char* algo;
  Measurement hash;
  Measurement bfs;
  double ratio() const {
    return bfs.total_remote() > 0 ? static_cast<double>(hash.total_remote()) /
                                        static_cast<double>(bfs.total_remote())
                                  : 0.0;
  }
};

// Runs one configuration on a fresh cluster: a fixed-length (threshold -1)
// job, so both sides of the A/B shuffle the same logical record stream.
Measurement run_once(const char* algo, const Graph& g,
                     std::shared_ptr<const Partitioner> part, bool agg) {
  Cluster cluster(placement_cluster());
  IterJobConf conf;
  if (std::strcmp(algo, "sssp") == 0) {
    Sssp::setup(cluster, g, 0, "in");
    conf = Sssp::imapreduce("in", "out", kIterations);
  } else {
    PageRank::setup(cluster, g, "in");
    conf = PageRank::imapreduce("in", "out", g.num_nodes(), kIterations);
  }
  conf.num_tasks = kTasks;
  conf.partitioner = std::move(part);
  conf.aggregated_shuffle = agg;
  cluster.metrics().reset();
  IterativeEngine engine(cluster);
  engine.run(conf);
  Measurement m;
  m.shuffle_remote =
      cluster.metrics().traffic_remote_bytes(TrafficCategory::kShuffle);
  m.agg_remote =
      cluster.metrics().traffic_remote_bytes(TrafficCategory::kShuffleAgg);
  m.state = read_state(cluster, "out");
  return m;
}

AB run_ab(const char* algo, const Graph& g) {
  AB ab;
  ab.algo = algo;
  ab.hash = run_once(algo, g, nullptr, false);
  ab.bfs = run_once(
      algo, g, make_bfs_partitioner(g, static_cast<uint32_t>(kTasks), kSeed),
      true);
  if (ab.hash.state != ab.bfs.state) {
    std::fprintf(stderr,
                 "FATAL: %s final state under bfs+agg differs from hash — "
                 "refusing to report traffic numbers\n",
                 algo);
    std::exit(1);
  }
  return ab;
}

}  // namespace
}  // namespace imr::bench

int main(int argc, char** argv) {
  using namespace imr;
  using namespace imr::bench;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  banner("placement-ab",
         "Partition-aware placement: remote shuffle bytes, hash vs BFS "
         "regions + aggregated exchange");
  const Graph sssp_g = bench_graph(/*weighted=*/true);
  const Graph pr_g = bench_graph(/*weighted=*/false);
  note(dataset_line("grid", sssp_g));
  note(strprintf("%d workers, %d task pairs, %d fixed iterations", kWorkers,
                 kTasks, kIterations));

  const AB results[] = {run_ab("pagerank", pr_g), run_ab("sssp", sssp_g)};

  TextTable table({"algo", "hash remote", "bfs remote", "bfs agg", "drop"});
  bool ok = true;
  for (const AB& ab : results) {
    table.add_row({ab.algo, human_bytes(ab.hash.total_remote()),
                   human_bytes(ab.bfs.total_remote()),
                   human_bytes(ab.bfs.agg_remote),
                   strprintf("%.1fx", ab.ratio())});
    ok = ok && ab.ratio() >= 2.0;
  }
  print_table(table);
  expectation("remote shuffle bytes drop >= 2x with BFS placement",
              strprintf("pagerank %.1fx, sssp %.1fx", results[0].ratio(),
                        results[1].ratio()));

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < 2; ++i) {
      const AB& ab = results[i];
      std::fprintf(f,
                   "  \"%s\": {\"hash_remote_bytes\": %lld, "
                   "\"bfs_remote_bytes\": %lld, \"ratio\": %.3f}%s\n",
                   ab.algo, static_cast<long long>(ab.hash.total_remote()),
                   static_cast<long long>(ab.bfs.total_remote()), ab.ratio(),
                   i == 0 ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: remote-byte drop below the 2x floor\n");
    return 1;
  }
  return 0;
}
