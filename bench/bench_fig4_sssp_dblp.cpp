// Figure 4: running time of SSSP on the DBLP author cooperation graph
// (local cluster, 16 iterations, four configurations).
#include "bench/bench_common.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 4", "SSSP running time on DBLP author cooperation graph");
  Graph g = make_sssp_graph("dblp", kLocalGraphScale, kSeed);
  note(dataset_line("dblp (scaled)", g));

  Cluster cluster(local_cluster_preset());
  FourWay r = run_sssp_fourway(cluster, g, "sssp_dblp", /*iters=*/16,
                               /*with_check_job=*/true);
  print_fourway(r);
  expectation(
      "2-3x speedup; ~20% saved by one-time init, ~15% by async maps, "
      "~20% by avoiding static shuffling",
      fmt_ratio(r.mr.total_wall_ms, r.imr.total_wall_ms) + " speedup; init " +
          fmt_pct(r.mr.init_wall_ms, r.mr.total_wall_ms) + ", async " +
          fmt_pct(r.imr_sync.total_wall_ms - r.imr.total_wall_ms,
                  r.mr.total_wall_ms));
  return 0;
}
