// Figure 7: running time of PageRank on the Berkeley-Stanford webgraph
// (local cluster, 20 iterations, four configurations).
#include "bench/bench_common.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 7", "PageRank running time on Berkeley-Stanford webgraph");
  Graph g = make_pagerank_graph("berkstan", kMediumGraphScale, kSeed);
  note(dataset_line("berkstan (scaled)", g));

  Cluster cluster(local_cluster_preset(kMediumDataScale));
  FourWay r = run_pagerank_fourway(cluster, g, "pr_bs", /*iters=*/20,
                                   /*with_check_job=*/true);
  print_fourway(r);
  expectation("~2x speedup over the Hadoop implementation",
              fmt_ratio(r.mr.total_wall_ms, r.imr.total_wall_ms) + " speedup");
  return 0;
}
