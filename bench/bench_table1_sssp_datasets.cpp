// Table 1: SSSP data sets statistics.
//
// Generates the five SSSP graphs (scaled stand-ins; see DESIGN.md) and prints
// our actual statistics next to the published ones.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Table 1", "SSSP data sets statistics (scaled stand-ins)");

  struct Row {
    const char* name;
    double scale;
    const char* paper_nodes;
    const char* paper_edges;
    const char* paper_size;
  };
  const Row rows[] = {
      {"dblp", kLocalGraphScale, "310,556", "1,518,617", "16 MB"},
      {"facebook", kLocalGraphScale, "1,204,004", "5,430,303", "58 MB"},
      {"sssp-s", kSyntheticScale, "1M", "7,868,140", "87 MB"},
      {"sssp-m", kSyntheticScale, "10M", "78,873,968", "958 MB"},
      {"sssp-l", kSyntheticScale, "50M", "369,455,293", "5.19 GB"},
  };

  TextTable table({"graph", "nodes", "edges", "file size", "paper nodes",
                   "paper edges", "paper size"});
  for (const Row& r : rows) {
    Graph g = make_sssp_graph(r.name, r.scale, kSeed);
    GraphStats s = stats_of(r.name, g);
    table.add_row({s.name, human_count(s.nodes), human_count(s.edges),
                   human_bytes(s.file_bytes), r.paper_nodes, r.paper_edges,
                   r.paper_size});
  }
  print_table(table);
  note("avg degree tracks the paper's log-normal parameters "
       "(out-degree mu=1.5 sigma=1.0; weights mu=0.4 sigma=1.2)");
  return 0;
}
