// Figure 18: running time of matrix power computation on the local cluster,
// 5 iterations, two map-reduce phases per iteration (§5.2.3).
//
// The paper uses a 1000x1000 matrix; scaled to 128x128 here (the per-
// iteration intermediate shuffle between Map 2 and Reduce 2 grows with n^3,
// which dominates in both systems exactly as §5.2.3 observes).
#include "algorithms/matpower.h"
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 18", "Matrix power computation (5 iterations, 2 phases)");

  const uint32_t n = 128;
  Matrix m = MatPower::generate(n, kSeed);
  note("matrix: " + std::to_string(n) + "x" + std::to_string(n) +
       " (paper: 1000x1000)");

  Cluster cluster(local_cluster_preset(/*data_scale=*/60.0));
  MatPower::setup(cluster, m, "mat");

  IterativeDriver driver(cluster);
  RunReport mr = driver.run(MatPower::baseline("mat", "work", 5));

  IterativeEngine engine(cluster);
  RunReport imr = engine.run(MatPower::imapreduce("mat", "out", 5));

  print_series({series_of("MapReduce", mr), series_of("iMapReduce", imr)});
  expectation(
      "~10% speedup only: the dominant cost is the ineluctable intermediate "
      "shuffle between Map 2 and Reduce 2, paid by both systems",
      fmt_ratio(mr.total_wall_ms, imr.total_wall_ms) + " speedup (" +
          fmt_pct(mr.total_wall_ms - imr.total_wall_ms, mr.total_wall_ms) +
          " time saved)");
  return 0;
}
