// Ablation A2: checkpoint frequency vs failure-recovery cost (§3.4.1).
//
// Checkpoints are written in parallel with the iteration (they do not extend
// the critical path), but a sparser checkpoint schedule forces a deeper
// rollback when a worker dies. This sweep injects a failure at iteration 8
// of 12 and reports total time and re-executed iterations per schedule.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Ablation A2", "checkpoint frequency vs recovery cost");
  Graph g = make_sssp_graph("facebook", 0.02, kSeed);
  note(dataset_line("facebook (scaled)", g));

  // Failure-free reference.
  double baseline_ms = 0;
  {
    Cluster cluster(ec2_preset(8, /*data_scale=*/50.0));
    Sssp::setup(cluster, g, 0, "sssp");
    IterJobConf conf = Sssp::imapreduce("sssp", "out", 12);
    conf.checkpoint_every = 2;
    IterativeEngine engine(cluster);
    baseline_ms = engine.run(conf).total_wall_ms;
  }

  TextTable table({"checkpoint every", "total (s)", "overhead vs no-failure",
                   "ckpt bytes"});
  for (int every : {1, 2, 4, 8}) {
    Cluster cluster(ec2_preset(8, /*data_scale=*/50.0));
    Sssp::setup(cluster, g, 0, "sssp");
    cluster.metrics().reset();
    cluster.schedule_worker_failure(/*worker=*/3, /*at_iteration=*/8);
    IterJobConf conf = Sssp::imapreduce("sssp", "out", 12);
    conf.checkpoint_every = every;
    IterativeEngine engine(cluster);
    RunReport r = engine.run(conf);
    table.add_row(
        {std::to_string(every), fmt_double(r.total_wall_ms / 1e3, 1),
         fmt_pct(r.total_wall_ms - baseline_ms, baseline_ms),
         human_bytes(static_cast<std::size_t>(
             cluster.metrics().traffic_bytes(TrafficCategory::kCheckpoint)))});
  }
  print_table(table);
  note("expected: recovery overhead grows with the checkpoint interval "
       "(deeper rollback), checkpoint traffic shrinks with it");

  // Cascading-failure series: a second worker dies while the cluster is
  // still recovering from the first (it takes out one of the respawned
  // pairs mid-map). Two recoveries, two rollbacks — the deeper the
  // checkpoint interval, the more work each rollback repeats.
  banner("Ablation A2b", "cascading failures (two deaths) vs recovery cost");
  TextTable cascade({"checkpoint every", "total (s)",
                     "overhead vs no-failure", "recoveries",
                     "rolled-back iters"});
  for (int every : {1, 2, 4, 8}) {
    Cluster cluster(ec2_preset(8, /*data_scale=*/50.0));
    Sssp::setup(cluster, g, 0, "sssp");
    cluster.metrics().reset();
    FaultSchedule schedule;
    schedule.add(/*worker=*/3, FaultPoint::kIterationBoundary,
                 /*at_iteration=*/8);
    schedule.add(/*worker=*/5, FaultPoint::kMidMap, /*at_iteration=*/9);
    cluster.set_fault_schedule(schedule);
    IterJobConf conf = Sssp::imapreduce("sssp", "out", 12);
    conf.checkpoint_every = every;
    IterativeEngine engine(cluster);
    RunReport r = engine.run(conf);
    int rolled_back = 0;
    for (std::size_t n = 0; n < r.rollback_iterations.size(); ++n) {
      // Rough re-execution depth: failure happened past the restored
      // checkpoint; each rollback repeats the gap.
      rolled_back += 8 + static_cast<int>(n) - r.rollback_iterations[n];
    }
    cascade.add_row(
        {std::to_string(every), fmt_double(r.total_wall_ms / 1e3, 1),
         fmt_pct(r.total_wall_ms - baseline_ms, baseline_ms),
         std::to_string(cluster.metrics().count("imr_recoveries")),
         std::to_string(rolled_back)});
  }
  print_table(cascade);
  note("expected: two failures roughly double the recovery overhead; the "
       "gap between schedules widens because both rollbacks repeat the "
       "checkpoint-interval-deep tail");
  return 0;
}
