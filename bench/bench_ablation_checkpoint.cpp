// Ablation A2: checkpoint frequency vs failure-recovery cost (§3.4.1).
//
// Checkpoints are written in parallel with the iteration (they do not extend
// the critical path), but a sparser checkpoint schedule forces a deeper
// rollback when a worker dies. This sweep injects a failure at iteration 8
// of 12 and reports total time and re-executed iterations per schedule.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Ablation A2", "checkpoint frequency vs recovery cost");
  Graph g = make_sssp_graph("facebook", 0.02, kSeed);
  note(dataset_line("facebook (scaled)", g));

  // Failure-free reference.
  double baseline_ms = 0;
  {
    Cluster cluster(ec2_preset(8, /*data_scale=*/50.0));
    Sssp::setup(cluster, g, 0, "sssp");
    IterJobConf conf = Sssp::imapreduce("sssp", "out", 12);
    conf.checkpoint_every = 2;
    IterativeEngine engine(cluster);
    baseline_ms = engine.run(conf).total_wall_ms;
  }

  TextTable table({"checkpoint every", "total (s)", "overhead vs no-failure",
                   "ckpt bytes"});
  for (int every : {1, 2, 4, 8}) {
    Cluster cluster(ec2_preset(8, /*data_scale=*/50.0));
    Sssp::setup(cluster, g, 0, "sssp");
    cluster.metrics().reset();
    cluster.schedule_worker_failure(/*worker=*/3, /*at_iteration=*/8);
    IterJobConf conf = Sssp::imapreduce("sssp", "out", 12);
    conf.checkpoint_every = every;
    IterativeEngine engine(cluster);
    RunReport r = engine.run(conf);
    table.add_row(
        {std::to_string(every), fmt_double(r.total_wall_ms / 1e3, 1),
         fmt_pct(r.total_wall_ms - baseline_ms, baseline_ms),
         human_bytes(static_cast<std::size_t>(
             cluster.metrics().traffic_bytes(TrafficCategory::kCheckpoint)))});
  }
  print_table(table);
  note("expected: recovery overhead grows with the checkpoint interval "
       "(deeper rollback), checkpoint traffic shrinks with it");
  return 0;
}
