// Figure 6: running time of PageRank on the Google webgraph
// (local cluster, 20 iterations, four configurations).
#include "bench/bench_common.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 6", "PageRank running time on Google webgraph");
  Graph g = make_pagerank_graph("google", kMediumGraphScale, kSeed);
  note(dataset_line("google (scaled)", g));

  Cluster cluster(local_cluster_preset(kMediumDataScale));
  FourWay r = run_pagerank_fourway(cluster, g, "pr_google", /*iters=*/20,
                                   /*with_check_job=*/true);
  print_fourway(r);
  expectation(
      "~2x speedup; ~10% saved by one-time init, ~30% by avoiding static "
      "shuffling, ~10% by async maps",
      fmt_ratio(r.mr.total_wall_ms, r.imr.total_wall_ms) + " speedup; init " +
          fmt_pct(r.mr.init_wall_ms, r.mr.total_wall_ms) + ", async " +
          fmt_pct(r.imr_sync.total_wall_ms - r.imr.total_wall_ms,
                  r.mr.total_wall_ms));
  return 0;
}
