// Figure 5: running time of SSSP on the Facebook user interaction graph
// (local cluster, 16 iterations, four configurations).
#include "bench/bench_common.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 5", "SSSP running time on Facebook user interaction graph");
  Graph g = make_sssp_graph("facebook", kMediumGraphScale, kSeed);
  note(dataset_line("facebook (scaled)", g));

  Cluster cluster(local_cluster_preset(kMediumDataScale));
  FourWay r = run_sssp_fourway(cluster, g, "sssp_fb", /*iters=*/16,
                               /*with_check_job=*/true);
  print_fourway(r);
  expectation("2-3x speedup over the Hadoop implementation",
              fmt_ratio(r.mr.total_wall_ms, r.imr.total_wall_ms) + " speedup");
  return 0;
}
