// Figure 20: running time of K-means with convergence detection.
//
// MapReduce baseline: after every K-means job an ADDITIONAL detection job
// runs (serialized, §5.3.3): it re-reads the points and counts how many
// would change cluster between the previous and the current centroids — the
// member-move metric needs a full pass over the data. iMapReduce runs the
// same detection as an auxiliary map-reduce phase in parallel with the main
// phase (§5.3). Both terminate when fewer than `kMoveThreshold` points move.
#include "algorithms/kmeans.h"
#include "bench/bench_common.h"
#include "cluster/task_context.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

namespace {

constexpr int64_t kMoveThreshold = 8;
constexpr int kMaxIterations = 30;

// Detection mapper: with the previous and current centroid sets attached,
// count the points whose nearest centroid changed; emit the partial count.
class MoveCountMapper : public Mapper {
 public:
  void attach_cache(const KVVec& records) override {
    for (const KV& kv : records) {
      std::size_t pos = 0;
      uint32_t cid = decode_u32(kv.key, pos);
      char tag = kv.key[pos];
      pos = 0;
      std::vector<double> c = decode_f64_vec(kv.value, pos);
      if (tag == 'P') {
        prev_.emplace_back(cid, std::move(c));
      } else {
        cur_.emplace_back(cid, std::move(c));
      }
    }
  }

  void map(const Bytes&, const Bytes& value, Emitter&) override {
    std::size_t pos = 0;
    std::vector<double> p = decode_f64_vec(value, pos);
    if (nearest(p, prev_) != nearest(p, cur_)) ++moved_;
  }

  void flush(Emitter& out) override { out.emit(u32_key(0), u64_key(moved_)); }

 private:
  static uint32_t nearest(
      const std::vector<double>& p,
      const std::vector<std::pair<uint32_t, std::vector<double>>>& cs) {
    uint32_t best = 0;
    double best_d = 1e300;
    for (const auto& [cid, c] : cs) {
      double d = 0;
      for (std::size_t i = 0; i < p.size(); ++i) {
        double x = p[i] - c[i];
        d += x * x;
      }
      if (d < best_d) {
        best_d = d;
        best = cid;
      }
    }
    return best;
  }

  std::vector<std::pair<uint32_t, std::vector<double>>> prev_, cur_;
  uint64_t moved_ = 0;
};

// The §2.1-style driver: K-means job + serialized detection job per
// iteration, stopping when fewer than kMoveThreshold members moved.
RunReport run_mr_with_detection(Cluster& cluster) {
  MapReduceEngine engine(cluster);
  RunReport report;
  report.label = "kmeans-detect/mapreduce";

  IterativeSpec body = KMeans::baseline("km", "unused", 1);
  int64_t vt = 0;
  std::string prev_centroids = "km/centroids0";
  for (int k = 1; k <= kMaxIterations; ++k) {
    // --- the K-means job ---
    JobConf job;
    job.name = "kmeans-it" + std::to_string(k);
    job.set_input("km/points", body.stages[0].mapper);
    job.cache_path = prev_centroids;
    job.output_path = "work/iter" + std::to_string(k);
    job.reducer = body.stages[0].reducer;
    JobResult res = engine.run_job(job, vt);
    vt = res.end_vt_ns;

    // --- driver assembles the tagged centroid cache for the detection job ---
    TaskContext driver(cluster, "driver", 0, vt);
    KVVec tagged;
    auto add_tagged = [&](const std::string& path, char tag) {
      for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
        for (KV& kv : driver.dfs_read_all(part)) {
          Bytes key = kv.key;
          key.push_back(tag);
          tagged.emplace_back(std::move(key), std::move(kv.value));
        }
      }
    };
    add_tagged(prev_centroids, 'P');
    add_tagged(job.output_path, 'C');
    driver.dfs_write("work/ckcache" + std::to_string(k), std::move(tagged));
    vt = driver.vt().now_ns();

    // --- the serialized detection job: full pass over the points ---
    JobConf detect;
    detect.name = "kmeans-detect" + std::to_string(k);
    detect.set_input("km/points",
                     [] { return std::make_unique<MoveCountMapper>(); });
    detect.cache_path = "work/ckcache" + std::to_string(k);
    detect.output_path = "work/moved" + std::to_string(k);
    detect.num_reduce_tasks = 1;
    detect.reducer = make_reducer([](const Bytes& key,
                                     const std::vector<Bytes>& values,
                                     Emitter& out) {
      uint64_t moved = 0;
      for (const Bytes& v : values) moved += as_u64(v);
      out.emit(key, u64_key(moved));
    });
    JobResult dres = engine.run_job(detect, vt);
    vt = dres.end_vt_ns;

    TaskContext reader(cluster, "driver", 0, vt);
    uint64_t moved = 0;
    for (const auto& part :
         resolve_input_paths(cluster.dfs(), detect.output_path)) {
      for (const KV& kv : reader.dfs_read_all(part)) moved += as_u64(kv.value);
    }
    vt = reader.vt().now_ns();

    IterationStat st;
    st.iteration = k;
    st.wall_ms_end = static_cast<double>(vt) / 1e6;
    st.distance = static_cast<double>(moved);
    report.iterations.push_back(st);
    report.iterations_run = k;
    prev_centroids = job.output_path;

    if (static_cast<int64_t>(moved) < kMoveThreshold) {
      report.converged = true;
      break;
    }
  }
  report.total_wall_ms = static_cast<double>(vt) / 1e6;
  return report;
}

}  // namespace

int main() {
  banner("Figure 20", "K-means with convergence detection");

  KMeansDataSpec spec;
  spec.num_points = 36000;
  spec.dim = 16;
  spec.num_clusters = 12;
  spec.spread = 0.18;  // overlapping clusters: assignments settle slowly,
                       // giving a multi-iteration run like the paper's Fig. 20
  spec.seed = kSeed;
  auto points = KMeans::generate_points(spec);

  Cluster cluster(local_cluster_preset(/*data_scale=*/100.0));
  KMeans::setup(cluster, points, spec.num_clusters, "km");

  // Baseline: member-move detection job serialized between K-means jobs.
  RunReport mr = run_mr_with_detection(cluster);

  // iMapReduce: the auxiliary phase counts moved members in parallel.
  IterativeEngine engine(cluster);
  RunReport imr = engine.run(
      KMeans::imapreduce_with_aux("km", "out", kMaxIterations, kMoveThreshold));

  print_series({series_of("MapReduce", mr), series_of("iMapReduce", imr)});
  TextTable table({"framework", "iterations", "total (s)"});
  table.add_row({"MapReduce + detection job", std::to_string(mr.iterations_run),
                 fmt_double(mr.total_wall_ms / 1e3, 1)});
  table.add_row({"iMapReduce + aux phase", std::to_string(imr.iterations_run),
                 fmt_double(imr.total_wall_ms / 1e3, 1)});
  print_table(table);
  expectation(
      "25% of the running time is saved, mainly from eliminating the "
      "synchronously executed auxiliary job",
      fmt_pct(mr.total_wall_ms - imr.total_wall_ms, mr.total_wall_ms) +
          " time saved (" + std::to_string(mr.iterations_run) + " vs " +
          std::to_string(imr.iterations_run) + " iterations)");
  return 0;
}
