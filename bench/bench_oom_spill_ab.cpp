// Out-of-core A/B (DESIGN.md §10): the same fixed-length job run unlimited
// and with a task memory budget of ONE QUARTER of its per-task per-iteration
// reduce input, on fresh identically configured clusters.
//
// The budgeted run degrades to disk — map and reduce buffers that cross the
// budget are sorted, spilled to MiniDfs as runs (TrafficCategory::kSpill),
// and the reduce streams a k-way merge over its runs — so the A/B gates the
// three promises the memory governor makes:
//   1. identity: the final states are BYTE-IDENTICAL (checked before any
//      number is reported — a memory win that changes the answer is a bug);
//   2. enforcement: the arena/budget high-water mark stays within the budget
//      plus bounded overshoot (one in-flight batch, the spill sort's
//      proportional scratch, and block-granularity arena growth);
//   3. bounded cost: the virtual-time slowdown of spilling every iteration
//      through the DFS stays under a generous ceiling — out-of-core must
//      degrade, not collapse.
//
// `--json <path>` dumps the measurements for
// scripts/check_bench_regression.py --spill, which gates the (deterministic)
// spill amplification ratio against the oom_spill_ab series in
// BENCH_substrate.json.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "bench_common.h"
#include "common/arena.h"
#include "mapreduce/engine.h"
#include "metrics/table.h"

namespace imr::bench {
namespace {

constexpr int kWorkers = 4;
constexpr int kTasks = 8;
constexpr int kIterations = 6;
constexpr uint32_t kGridSide = 224;
// Small shuffle batches keep the budget overshoot tight: the reduce charges
// one arriving batch before noticing it is over, so batch size bounds the
// spill trigger's lag.
constexpr int kBufferRecords = 256;
constexpr double kMaxSlowdown = 10.0;

ClusterConfig spill_cluster() {
  ClusterConfig config;
  config.num_workers = kWorkers;
  config.map_slots_per_worker = 2;
  config.reduce_slots_per_worker = 2;
  config.cost = CostModel::local_cluster();
  return config;
}

Graph bench_graph(bool weighted) {
  GridGraphSpec spec;
  spec.rows = kGridSide;
  spec.cols = kGridSide;
  spec.weighted = weighted;
  spec.seed = kSeed;
  return generate_grid_graph(spec);
}

std::map<Bytes, Bytes> read_state(Cluster& cluster, const std::string& path) {
  std::map<Bytes, Bytes> state;
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      state[kv.key] = kv.value;
    }
  }
  return state;
}

struct Measurement {
  double wall_ms = 0;
  int64_t shuffle_bytes = 0;
  int64_t spill_bytes = 0;
  int64_t spill_runs = 0;
  int64_t arena_hwm = 0;
  std::map<Bytes, Bytes> state;
};

struct AB {
  const char* algo;
  int64_t budget = 0;
  Measurement unlimited;
  Measurement budgeted;
  double slowdown() const {
    return unlimited.wall_ms > 0 ? budgeted.wall_ms / unlimited.wall_ms : 0.0;
  }
  double amplification() const {
    return unlimited.shuffle_bytes > 0
               ? static_cast<double>(budgeted.spill_bytes) /
                     static_cast<double>(unlimited.shuffle_bytes)
               : 0.0;
  }
};

Measurement run_once(const char* algo, const Graph& g, int64_t budget) {
  Cluster cluster(spill_cluster());
  IterJobConf conf;
  if (std::strcmp(algo, "sssp") == 0) {
    Sssp::setup(cluster, g, 0, "in");
    conf = Sssp::imapreduce("in", "out", kIterations);
  } else {
    PageRank::setup(cluster, g, "in");
    conf = PageRank::imapreduce("in", "out", g.num_nodes(), kIterations);
  }
  conf.num_tasks = kTasks;
  conf.buffer_records = kBufferRecords;
  conf.max_task_memory_bytes = budget;
  cluster.metrics().reset();
  IterativeEngine engine(cluster);
  RunReport report = engine.run(conf);
  Measurement m;
  m.wall_ms = report.total_wall_ms;
  m.shuffle_bytes = cluster.metrics().traffic_bytes(TrafficCategory::kShuffle);
  m.spill_bytes = cluster.metrics().count("imr_spill_bytes_written");
  m.spill_runs = cluster.metrics().count("imr_spill_runs_written");
  m.arena_hwm = cluster.metrics().gauge("imr_arena_hwm");
  m.state = read_state(cluster, "out");
  // The ledger must close balanced with nothing left on disk — the same
  // conservation rule the InvariantChecker and imr_stat --validate enforce.
  const int64_t open = m.spill_bytes -
                       cluster.metrics().count("imr_spill_bytes_read") -
                       cluster.metrics().count("imr_spill_bytes_dropped");
  if (open != 0 || !cluster.dfs().list("spill/").empty()) {
    std::fprintf(stderr, "FATAL: %s spill ledger left %lld bytes open\n",
                 algo, static_cast<long long>(open));
    std::exit(1);
  }
  return m;
}

AB run_ab(const char* algo, const Graph& g) {
  AB ab;
  ab.algo = algo;
  ab.unlimited = run_once(algo, g, 0);
  // Quarter of the measured per-task per-iteration reduce input, floored at
  // a few arena blocks so the budget means "several buffers", not "less
  // than one sort's scratch".
  ab.budget = std::max<int64_t>(
      ab.unlimited.shuffle_bytes / (kTasks * kIterations * 4),
      3 * static_cast<int64_t>(RecordArena::kBlockBytes));
  ab.budgeted = run_once(algo, g, ab.budget);
  if (ab.unlimited.state != ab.budgeted.state) {
    std::fprintf(stderr,
                 "FATAL: %s final state under the budget differs from the "
                 "unlimited run — refusing to report numbers\n",
                 algo);
    std::exit(1);
  }
  return ab;
}

}  // namespace
}  // namespace imr::bench

int main(int argc, char** argv) {
  using namespace imr;
  using namespace imr::bench;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  banner("oom-spill-ab",
         "Memory governance: unlimited vs quarter-footprint task budget, "
         "byte-identity gated");
  const Graph sssp_g = bench_graph(/*weighted=*/true);
  const Graph pr_g = bench_graph(/*weighted=*/false);
  note(dataset_line("grid", sssp_g));
  note(strprintf("%d workers, %d task pairs, %d fixed iterations, "
                 "%d-record batches",
                 kWorkers, kTasks, kIterations, kBufferRecords));

  const AB results[] = {run_ab("pagerank", pr_g), run_ab("sssp", sssp_g)};

  TextTable table({"algo", "budget", "arena hwm", "spilled", "runs",
                   "amplification", "slowdown"});
  bool ok = true;
  for (const AB& ab : results) {
    table.add_row({ab.algo, human_bytes(ab.budget),
                   human_bytes(ab.budgeted.arena_hwm),
                   human_bytes(ab.budgeted.spill_bytes),
                   strprintf("%lld", static_cast<long long>(
                                         ab.budgeted.spill_runs)),
                   strprintf("%.2fx", ab.amplification()),
                   strprintf("%.2fx", ab.slowdown())});
    // Enforcement: budget + one batch + the spill sort's proportional
    // scratch (bounded by the buffer it sorts, so < budget) + one arena
    // block of growth granularity.
    const int64_t hwm_ceiling =
        2 * ab.budget + 2 * static_cast<int64_t>(RecordArena::kBlockBytes);
    if (ab.budgeted.spill_runs < kTasks * kIterations) {
      std::fprintf(stderr, "FAIL: %s spilled only %lld runs — the budget "
                   "never bit\n",
                   ab.algo,
                   static_cast<long long>(ab.budgeted.spill_runs));
      ok = false;
    }
    if (ab.budgeted.arena_hwm > hwm_ceiling) {
      std::fprintf(stderr,
                   "FAIL: %s arena hwm %lld exceeds the enforcement ceiling "
                   "%lld (budget %lld)\n",
                   ab.algo, static_cast<long long>(ab.budgeted.arena_hwm),
                   static_cast<long long>(hwm_ceiling),
                   static_cast<long long>(ab.budget));
      ok = false;
    }
    if (ab.unlimited.spill_runs != 0) {
      std::fprintf(stderr, "FAIL: %s unlimited run spilled\n", ab.algo);
      ok = false;
    }
    if (ab.slowdown() > kMaxSlowdown) {
      std::fprintf(stderr, "FAIL: %s slowdown %.2fx exceeds %.1fx\n", ab.algo,
                   ab.slowdown(), kMaxSlowdown);
      ok = false;
    }
  }
  print_table(table);
  expectation("byte-identical output, budget enforced, bounded slowdown",
              strprintf("pagerank %.2fx / sssp %.2fx virtual-time slowdown",
                        results[0].slowdown(), results[1].slowdown()));

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < 2; ++i) {
      const AB& ab = results[i];
      std::fprintf(
          f,
          "  \"%s\": {\"budget_bytes\": %lld, \"arena_hwm\": %lld, "
          "\"spill_bytes\": %lld, \"spill_runs\": %lld, "
          "\"shuffle_bytes\": %lld, \"amplification\": %.3f, "
          "\"slowdown\": %.3f}%s\n",
          ab.algo, static_cast<long long>(ab.budget),
          static_cast<long long>(ab.budgeted.arena_hwm),
          static_cast<long long>(ab.budgeted.spill_bytes),
          static_cast<long long>(ab.budgeted.spill_runs),
          static_cast<long long>(ab.unlimited.shuffle_bytes),
          ab.amplification(), ab.slowdown(), i == 0 ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  return ok ? 0 : 1;
}
