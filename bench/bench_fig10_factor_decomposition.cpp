// Figure 10: different factors' effects on running-time reduction
// (EC2 cluster, 20 instances, sssp-m and pagerank-m, 10 iterations).
//
// Measured exactly as §4.2 describes: the gap MapReduce -> iMapReduce is
// decomposed into one-time initialization (MapReduce ex.-init. reference
// point), asynchronous map execution (iMapReduce sync. reference point), and
// the remainder attributed to avoiding static-data shuffling.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

namespace {

void decompose(const char* label, const FourWay& r, TextTable& table) {
  double mr = r.mr.total_wall_ms;
  double init_saving = r.mr.init_wall_ms;
  double async_saving = r.imr_sync.total_wall_ms - r.imr.total_wall_ms;
  double total_saving = mr - r.imr.total_wall_ms;
  double shuffle_saving = total_saving - init_saving - async_saving;
  table.add_row({label, fmt_pct(init_saving, mr), fmt_pct(shuffle_saving, mr),
                 fmt_pct(async_saving, mr), fmt_pct(total_saving, mr)});
}

}  // namespace

int main() {
  banner("Figure 10", "Different factors' effects on running time reduction");

  TextTable table({"workload", "one-time init", "no static shuffling",
                   "async maps", "total reduction"});

  {
    Cluster cluster(ec2_preset(20, kSyntheticDataScale));
    Graph g = make_sssp_graph("sssp-m", kSyntheticScale, kSeed);
    note(dataset_line("sssp-m", g));
    FourWay r = run_sssp_fourway(cluster, g, "sssp_m", 10,
                                 /*with_check_job=*/true);
    decompose("SSSP (sssp-m)", r, table);
  }
  {
    Cluster cluster(ec2_preset(20, kSyntheticDataScale));
    Graph g = make_pagerank_graph("pagerank-m", kSyntheticScale, kSeed);
    note(dataset_line("pagerank-m", g));
    FourWay r = run_pagerank_fourway(cluster, g, "pr_m", 10,
                                     /*with_check_job=*/true);
    decompose("PageRank (pagerank-m)", r, table);
  }
  print_table(table);
  expectation(
      "one-time init and async maps each save ~5-10%; static-shuffle "
      "avoidance saves proportionally to the static data size (SSSP-m 958MB "
      "> PageRank-m 690MB)",
      "see table: shuffle-avoidance share should dominate and be larger for "
      "SSSP than PageRank");
  return 0;
}
