// Session reconvergence A/B (DESIGN.md §8): time-to-reconverge after a
// static-delta batch vs a cold run over the mutated input, across delta
// sizes from 0.01% to 10% of the edge set.
//
// For each algorithm and delta fraction the bench converges a session on g0,
// mutates `fraction * num_edges` adjacency lists into g1, feeds the
// difference to the resident session, and measures the reconvergence epoch's
// virtual wall time against a cold workset run over g1 on an identically
// configured cluster. The final states are asserted BYTE-IDENTICAL before
// any number is reported — a reconvergence speedup that changes the answer
// is a bug, not a win.
//
// SSSP and connected components use refining edits (weight decreases, edge
// additions), so the session takes the incremental path and the win should
// grow as deltas shrink. Delta-PageRank's hook declares every edit
// non-refining (banked rank shares can't be retracted), so its session
// replays in place — reported as the honest baseline: roughly cold-run time,
// minus only the task/static setup it avoids repaying.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "algorithms/concomp.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "bench_common.h"
#include "graph/graph.h"
#include "imapreduce/delta.h"
#include "mapreduce/engine.h"
#include "metrics/table.h"

namespace imr::bench {
namespace {

enum class Algo { kSssp, kConComp, kPrDelta };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kSssp:
      return "sssp";
    case Algo::kConComp:
      return "concomp";
    case Algo::kPrDelta:
      return "pagerank-delta";
  }
  return "?";
}

constexpr int kTasks = 8;
constexpr int kMaxIters = 200;
constexpr double kPrTheta = 1e-5;

Graph base_graph(Algo algo) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 4000;
  spec.degree_mu = 1.2;
  spec.degree_sigma = 1.0;
  spec.weighted = algo == Algo::kSssp;
  spec.seed = kSeed;
  return generate_lognormal_graph(spec);
}

// Refining edit batch: pick `count` distinct nodes with out-edges and halve
// one edge weight (weighted) or add one fresh edge (unweighted). Refining
// for the SSSP/ConComp hooks; PrDelta resets regardless.
Graph mutate(const Graph& g0, std::size_t count, uint64_t seed) {
  Graph g = g0;
  std::mt19937_64 rng(seed);
  const uint32_t n = g.num_nodes();
  std::size_t done = 0;
  for (int tries = 0; done < count && tries < static_cast<int>(count) * 50;
       ++tries) {
    auto u = static_cast<uint32_t>(rng() % n);
    if (g.weighted) {
      if (g.adj[u].empty()) continue;
      WEdge& e = g.adj[u][rng() % g.adj[u].size()];
      if (e.weight <= 1e-12) continue;
      e.weight *= 0.5;
      ++done;
    } else {
      auto v = static_cast<uint32_t>(rng() % n);
      bool adjacent = u == v;
      for (const WEdge& e : g.adj[u]) adjacent |= e.dst == v;
      for (const WEdge& e : g.adj[v]) adjacent |= e.dst == u;
      if (adjacent) continue;
      g.adj[u].push_back(WEdge{v, 1.0});
      ++done;
    }
  }
  return g;
}

void setup_algo(Algo algo, Cluster& cluster, const Graph& g,
                const std::string& base) {
  switch (algo) {
    case Algo::kSssp:
      Sssp::setup(cluster, g, 0, base);
      break;
    case Algo::kConComp:
      ConComp::setup(cluster, g, base);
      break;
    case Algo::kPrDelta:
      PageRank::setup_delta(cluster, g, base);
      break;
  }
}

IterJobConf make_conf(Algo algo, const std::string& base,
                      const std::string& out) {
  IterJobConf conf;
  switch (algo) {
    case Algo::kSssp:
      conf = Sssp::imapreduce(base, out, kMaxIters);
      break;
    case Algo::kConComp:
      conf = ConComp::imapreduce(base, out, kMaxIters);
      break;
    case Algo::kPrDelta:
      conf = PageRank::imapreduce_delta(base, out, kMaxIters, kPrTheta);
      break;
  }
  conf.num_tasks = kTasks;
  conf.workset_mode = true;
  conf.distance_threshold = -1.0;
  return conf;
}

StaticDelta build_delta(Algo algo, const Graph& before, const Graph& after) {
  switch (algo) {
    case Algo::kSssp:
      return Sssp::static_delta(before, after);
    case Algo::kConComp:
      return ConComp::static_delta(before, after);
    case Algo::kPrDelta:
      return PageRank::static_delta(before, after);
  }
  return {};
}

std::map<Bytes, Bytes> read_state(Cluster& cluster, const std::string& path) {
  std::map<Bytes, Bytes> state;
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      state[kv.key] = kv.value;
    }
  }
  return state;
}

struct Point {
  double fraction = 0.0;
  std::size_t delta_ops = 0;
  double cold_ms = 0.0;
  double reconverge_ms = 0.0;
  int reconverge_iters = 0;
  bool reset = false;
};

Point run_point(Algo algo, const Graph& g0, double fraction) {
  Point pt;
  pt.fraction = fraction;
  const auto edits = static_cast<std::size_t>(
      std::max<double>(1.0, fraction * static_cast<double>(g0.num_edges())));
  const Graph g1 = mutate(g0, edits, kSeed ^ edits);
  const StaticDelta delta = build_delta(algo, g0, g1);
  pt.delta_ops = delta.size();

  const ClusterConfig config = local_cluster_preset();

  // Cold: a fresh workset run over the mutated graph.
  Cluster cold(config);
  setup_algo(algo, cold, g1, "in");
  IterativeEngine cold_engine(cold);
  RunReport cold_run = cold_engine.run(make_conf(algo, "in", "out"));
  if (!cold_run.converged) {
    std::fprintf(stderr, "cold run did not converge (%s)\n", algo_name(algo));
    std::exit(1);
  }
  pt.cold_ms = cold_run.total_wall_ms;
  const auto reference = read_state(cold, "out");

  // Session: converge on g0 (not timed), absorb the delta, reconverge.
  Cluster live(config);
  setup_algo(algo, live, g0, "in");
  IterativeEngine engine(live);
  JobSession session = engine.open_session(make_conf(algo, "in", "out"));
  RunReport epoch = session.apply_update(delta);
  pt.reconverge_ms = epoch.total_wall_ms;
  pt.reconverge_iters = static_cast<int>(epoch.iterations.size());
  pt.reset = live.metrics().count("imr_session_resets") > 0;
  session.close();

  if (reference != read_state(live, "out")) {
    std::fprintf(stderr,
                 "FATAL: reconverged state differs from the cold run "
                 "(%s, fraction %g) — refusing to report timings\n",
                 algo_name(algo), fraction);
    std::exit(1);
  }
  return pt;
}

void run_algo(Algo algo) {
  const Graph g0 = base_graph(algo);
  note(dataset_line(algo_name(algo), g0));
  TextTable table({"delta", "ops", "cold", "reconverge", "iters", "path",
                   "speedup"});
  for (double fraction : {0.0001, 0.001, 0.01, 0.1}) {
    Point pt = run_point(algo, g0, fraction);
    table.add_row({strprintf("%.2f%%", pt.fraction * 100.0),
                   std::to_string(pt.delta_ops),
                   strprintf("%.1f ms", pt.cold_ms),
                   strprintf("%.1f ms", pt.reconverge_ms),
                   std::to_string(pt.reconverge_iters),
                   pt.reset ? "reset" : "incremental",
                   fmt_ratio(pt.cold_ms, pt.reconverge_ms)});
  }
  print_table(table);
}

}  // namespace
}  // namespace imr::bench

int main() {
  using namespace imr::bench;
  banner("session-reconverge",
         "Incremental reconvergence vs cold run across delta sizes");
  expectation(
      "incremental maintenance wins by orders of magnitude at small deltas",
      "speedup column below; states asserted byte-identical per point");
  run_algo(Algo::kSssp);
  run_algo(Algo::kConComp);
  run_algo(Algo::kPrDelta);
  return 0;
}
