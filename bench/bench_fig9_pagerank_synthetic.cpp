// Figure 9: running time of PageRank on the synthetic graphs (EC2 cluster,
// 20 instances, 10 iterations, Hadoop vs iMapReduce).
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 9", "PageRank running time on the synthetic graphs (EC2-20)");

  TextTable table({"graph", "MapReduce (s)", "iMapReduce (s)",
                   "iMR/MR ratio", "paper ratio"});
  const char* names[] = {"pagerank-s", "pagerank-m", "pagerank-l"};
  const char* paper[] = {"44%", "~60%", "~60%"};
  double ratios[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    Cluster cluster(ec2_preset(20, kSyntheticDataScale));
    Graph g = make_pagerank_graph(names[i], kSyntheticScale, kSeed);
    note(dataset_line(names[i], g));
    FourWay r = run_pagerank_fourway(cluster, g, names[i], /*iters=*/10,
                                     /*with_check_job=*/true);
    ratios[i] = r.imr.total_wall_ms / r.mr.total_wall_ms;
    table.add_row({names[i], fmt_double(r.mr.total_wall_ms / 1e3, 1),
                   fmt_double(r.imr.total_wall_ms / 1e3, 1),
                   fmt_pct(r.imr.total_wall_ms, r.mr.total_wall_ms),
                   paper[i]});
  }
  print_table(table);
  expectation(
      "running time reduced to 44% (pagerank-s) and about 60% (m, l)",
      "ratios " + fmt_double(100 * ratios[0], 1) + "% / " +
          fmt_double(100 * ratios[1], 1) + "% / " +
          fmt_double(100 * ratios[2], 1) + "%");
  return 0;
}
