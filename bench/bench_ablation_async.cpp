// Ablation A5: what asynchronous map execution (§3.3) actually buys.
//
// Async lets a map start on its own reducer's output without waiting for the
// global iteration boundary. Its benefit is structural only when the slowest
// task pair CHANGES between iterations (per-iteration load variance); with a
// statically slow worker the critical chain is the same pair every round and
// async ≈ sync. SSSP has natural variance (the wavefront moves across
// partitions); PageRank is uniform. This sweep quantifies both.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

namespace {

template <typename MakeConf>
std::pair<double, double> run_both(Cluster& cluster, MakeConf&& make_conf) {
  IterativeEngine engine(cluster);
  IterJobConf sync_conf = make_conf("out_sync");
  sync_conf.async_maps = false;
  double sync_ms = engine.run(sync_conf).total_wall_ms;
  double async_ms = engine.run(make_conf("out_async")).total_wall_ms;
  return {sync_ms, async_ms};
}

}  // namespace

int main() {
  banner("Ablation A5", "asynchronous map execution vs per-iteration variance");

  TextTable table({"workload", "sync (s)", "async (s)", "async saving"});
  {
    // SSSP: wavefront-driven variance (the async-friendly case).
    Cluster cluster(local_cluster_preset());
    Graph g = make_sssp_graph("dblp", kLocalGraphScale, kSeed);
    Sssp::setup(cluster, g, 0, "sssp");
    auto [sync_ms, async_ms] = run_both(cluster, [&](const char* out) {
      return Sssp::imapreduce("sssp", out, 16);
    });
    table.add_row({"SSSP/dblp (wavefront variance)",
                   fmt_double(sync_ms / 1e3, 1), fmt_double(async_ms / 1e3, 1),
                   fmt_pct(sync_ms - async_ms, sync_ms)});
  }
  {
    // PageRank: uniform per-iteration load (little to pipeline).
    Cluster cluster(local_cluster_preset(kMediumDataScale));
    Graph g = make_pagerank_graph("google", kMediumGraphScale, kSeed);
    PageRank::setup(cluster, g, "pr");
    auto [sync_ms, async_ms] = run_both(cluster, [&](const char* out) {
      return PageRank::imapreduce("pr", out, g.num_nodes(), 16);
    });
    table.add_row({"PageRank/google (uniform load)",
                   fmt_double(sync_ms / 1e3, 1), fmt_double(async_ms / 1e3, 1),
                   fmt_pct(sync_ms - async_ms, sync_ms)});
  }
  print_table(table);
  note("expected: SSSP benefits more from async than PageRank "
       "(the paper's Figs. 4-7 show ~15% vs ~10%)");
  return 0;
}
