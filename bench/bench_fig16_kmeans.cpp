// Figure 16 (+ §5.1.3's Combiner experiment): running time of K-means for
// clustering Last.fm-style listener data on the local cluster, 10 iterations.
#include "algorithms/kmeans.h"
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 16", "K-means running time (local cluster, 10 iterations)");

  // Last.fm substitution (DESIGN.md): the paper's 359,347 users with 48.9
  // preferred artists each becomes a dense Gaussian-mixture taste-vector set
  // scaled to 1/10.
  KMeansDataSpec spec;
  spec.num_points = 36000;
  spec.dim = 16;
  spec.num_clusters = 10;
  spec.seed = kSeed;
  auto points = KMeans::generate_points(spec);
  note("dataset: " + human_count(spec.num_points) + " listeners x " +
       std::to_string(spec.dim) + " dims, k = " +
       std::to_string(spec.num_clusters));

  Cluster cluster(local_cluster_preset(/*data_scale=*/100.0));
  KMeans::setup(cluster, points, spec.num_clusters, "km");
  IterativeDriver driver(cluster);
  IterativeEngine engine(cluster);

  RunReport mr = driver.run(KMeans::baseline("km", "w1", 10));
  RunReport imr = engine.run(KMeans::imapreduce("km", "o1", 10));
  RunReport mr_comb = driver.run(
      KMeans::baseline("km", "w2", 10, -1.0, /*with_combiner=*/true));
  RunReport imr_comb = engine.run(
      KMeans::imapreduce("km", "o2", 10, -1.0, /*with_combiner=*/true));

  print_series({series_of("MapReduce", mr), series_of("iMapReduce", imr)});

  TextTable table({"configuration", "MapReduce (s)", "iMapReduce (s)",
                   "speedup"});
  table.add_row({"no combiner", fmt_double(mr.total_wall_ms / 1e3, 1),
                 fmt_double(imr.total_wall_ms / 1e3, 1),
                 fmt_ratio(mr.total_wall_ms, imr.total_wall_ms)});
  table.add_row({"with combiner", fmt_double(mr_comb.total_wall_ms / 1e3, 1),
                 fmt_double(imr_comb.total_wall_ms / 1e3, 1),
                 fmt_ratio(mr_comb.total_wall_ms, imr_comb.total_wall_ms)});
  print_table(table);

  expectation(
      "~1.2x speedup (less than SSSP/PageRank: K-means shuffles the static "
      "data and maps run synchronously); Combiner cuts 23% (Hadoop: "
      "2881s->2226s) and 26% (iMapReduce: 2338s->1733s)",
      fmt_ratio(mr.total_wall_ms, imr.total_wall_ms) +
          " speedup; combiner cuts MR by " +
          fmt_pct(mr.total_wall_ms - mr_comb.total_wall_ms, mr.total_wall_ms) +
          " and iMR by " +
          fmt_pct(imr.total_wall_ms - imr_comb.total_wall_ms,
                  imr.total_wall_ms));
  return 0;
}
