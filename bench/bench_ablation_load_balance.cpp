// Ablation A3: load balancing on a heterogeneous cluster (§3.4.2).
//
// Two of eight workers run at reduced speed. With load balancing off, every
// iteration is as slow as the slowest worker; with it on, the master
// migrates the hot task pairs to fast workers after a few iterations.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Ablation A3", "load balancing on a heterogeneous cluster");
  Graph g = make_sssp_graph("facebook", 0.02, kSeed);
  note(dataset_line("facebook (scaled)", g));
  note("workers 0 and 1 run at 25% speed");

  TextTable table({"load balancing", "total (s)", "migrations"});
  for (bool balancing : {false, true}) {
    Cluster cluster(ec2_preset(8, /*data_scale=*/50.0));
    cluster.set_worker_speed(0, 0.25);
    cluster.set_worker_speed(1, 0.25);
    Sssp::setup(cluster, g, 0, "sssp");
    cluster.metrics().reset();

    IterJobConf conf = Sssp::imapreduce("sssp", "out", 16);
    conf.checkpoint_every = 1;
    conf.load_balancing = balancing;
    conf.migration_threshold = 0.5;
    IterativeEngine engine(cluster);
    RunReport r = engine.run(conf);
    table.add_row({balancing ? "on" : "off",
                   fmt_double(r.total_wall_ms / 1e3, 1),
                   std::to_string(cluster.metrics().count("imr_migrations"))});
  }
  print_table(table);
  note("expected: balancing migrates pairs off the slow workers and cuts "
       "total time (at the cost of a rollback per migration)");
  return 0;
}
