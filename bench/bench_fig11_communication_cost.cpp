// Figure 11: total communication cost (EC2 cluster, 20 instances, sssp-l and
// pagerank-l, 10 iterations): bytes exchanged between workers.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 11", "Total communication cost (data exchanged)");

  TextTable table({"workload", "MapReduce", "iMapReduce", "iMR/MR"});
  double r1 = 0, r2 = 0;
  {
    Cluster cluster(ec2_preset(20, kSyntheticDataScale));
    Graph g = make_sssp_graph("sssp-l", kSyntheticScale, kSeed);
    note(dataset_line("sssp-l", g));
    FourWay r = run_sssp_fourway(cluster, g, "sssp_l", 10, true);
    r1 = static_cast<double>(r.imr_comm) / static_cast<double>(r.mr_comm);
    table.add_row({"SSSP (sssp-l)",
                   human_bytes(static_cast<std::size_t>(r.mr_comm)),
                   human_bytes(static_cast<std::size_t>(r.imr_comm)),
                   fmt_pct(static_cast<double>(r.imr_comm),
                           static_cast<double>(r.mr_comm))});
  }
  {
    Cluster cluster(ec2_preset(20, kSyntheticDataScale));
    Graph g = make_pagerank_graph("pagerank-l", kSyntheticScale, kSeed);
    note(dataset_line("pagerank-l", g));
    FourWay r = run_pagerank_fourway(cluster, g, "pr_l", 10, true);
    r2 = static_cast<double>(r.imr_comm) / static_cast<double>(r.mr_comm);
    table.add_row({"PageRank (pagerank-l)",
                   human_bytes(static_cast<std::size_t>(r.mr_comm)),
                   human_bytes(static_cast<std::size_t>(r.imr_comm)),
                   fmt_pct(static_cast<double>(r.imr_comm),
                           static_cast<double>(r.mr_comm))});
  }
  print_table(table);
  expectation("the amount of data exchanged is reduced to only about 12%",
              "ratios " + fmt_double(100 * r1, 1) + "% / " +
                  fmt_double(100 * r2, 1) + "%");
  return 0;
}
