// Shared experiment drivers for the figure/table benches.
//
// Dataset scales: the paper's graphs are scaled down (DESIGN.md) so a
// single-core CI box finishes the full suite in minutes. The published
// size ratios between s/m/l are preserved.
#pragma once

#include <memory>
#include <string>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "bench_util/harness.h"
#include "common/log.h"
#include "common/strings.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"

namespace imr::bench {

// Scale factors for the named datasets (1.0 = published size).
inline constexpr double kLocalGraphScale = 1.0;   // DBLP (Fig. 4): full published size
// Figs. 5-7 run the bigger webgraphs at 30% size with the cost model scaled
// to match (CostModel::scaled_for_data) so the suite stays fast on one core.
inline constexpr double kMediumGraphScale = 0.3;
inline constexpr double kMediumDataScale = 1.0 / kMediumGraphScale;
inline constexpr double kSyntheticScale = 0.005;  // sssp-s/m/l, pagerank-s/m/l
inline constexpr double kSyntheticDataScale = 1.0 / kSyntheticScale;
inline constexpr uint64_t kSeed = 20110516;       // IPDPS 2011 workshop week

// The four configurations of Figs. 4–7.
struct FourWay {
  RunReport mr;        // chain of jobs + convergence-check job per iteration
  RunReport imr_sync;  // persistent tasks, synchronous maps
  RunReport imr;       // persistent tasks, asynchronous maps
  int64_t mr_comm = 0;   // total remote bytes of the MapReduce run
  int64_t imr_comm = 0;  // total remote bytes of the async iMapReduce run
};

// Runs SSSP in all configurations for `iters` fixed iterations.
// `with_check_job` adds the paper's per-iteration convergence-check job to
// the baseline (used by the local-cluster figures).
inline FourWay run_sssp_fourway(Cluster& cluster, const Graph& g,
                                const std::string& base, int iters,
                                bool with_check_job) {
  FourWay out;
  Sssp::setup(cluster, g, 0, base);

  cluster.metrics().reset();
  IterativeDriver driver(cluster);
  // threshold 0 never triggers (distances are >= 0), so the check job runs
  // every iteration without stopping the fixed-length run.
  out.mr = driver.run(Sssp::baseline(base, base + "/work", iters,
                                     with_check_job ? 0.0 : -1.0));
  out.mr_comm = cluster.metrics().total_remote_bytes();

  IterativeEngine engine(cluster);
  IterJobConf sync_conf = Sssp::imapreduce(base, base + "/out_sync", iters);
  sync_conf.async_maps = false;
  cluster.metrics().reset();
  out.imr_sync = engine.run(sync_conf);

  cluster.metrics().reset();
  out.imr = engine.run(Sssp::imapreduce(base, base + "/out", iters));
  out.imr_comm = cluster.metrics().total_remote_bytes();
  return out;
}

inline FourWay run_pagerank_fourway(Cluster& cluster, const Graph& g,
                                    const std::string& base, int iters,
                                    bool with_check_job) {
  FourWay out;
  PageRank::setup(cluster, g, base);

  cluster.metrics().reset();
  IterativeDriver driver(cluster);
  out.mr = driver.run(PageRank::baseline(base, base + "/work", g.num_nodes(),
                                         iters, with_check_job ? 0.0 : -1.0));
  out.mr_comm = cluster.metrics().total_remote_bytes();

  IterativeEngine engine(cluster);
  IterJobConf sync_conf =
      PageRank::imapreduce(base, base + "/out_sync", g.num_nodes(), iters);
  sync_conf.async_maps = false;
  cluster.metrics().reset();
  out.imr_sync = engine.run(sync_conf);

  cluster.metrics().reset();
  out.imr =
      engine.run(PageRank::imapreduce(base, base + "/out", g.num_nodes(), iters));
  out.imr_comm = cluster.metrics().total_remote_bytes();
  return out;
}

// --- Bulk-vs-workset A/B (DESIGN.md §7) ---
//
// The same convergent job run twice on fresh, identically configured
// clusters: once in bulk mode (count-changed distance threshold) and once
// with workset_mode on, where the frontier drain is the only termination
// path. Alongside wall time the A/B records the map phase's record ledger —
// bulk maps every state record every iteration, workset maps the full state
// once and then only each iteration's frontier — so the tail-iteration
// advantage is measured in mapped records, not just seconds.
struct WorksetAB {
  RunReport bulk;
  RunReport ws;
  int64_t state_records = 0;
  int64_t bulk_mapped = 0;  // imr_map_input_records across the whole run
  int64_t ws_mapped = 0;
  // Map input of the final (converging) iteration: the full state vs the
  // last non-empty frontier.
  int64_t tail_bulk = 0;
  int64_t tail_ws = 0;
};

inline void finish_workset_ab(WorksetAB& r) {
  r.tail_bulk = r.state_records;
  const auto& stats = r.ws.iterations;
  r.tail_ws = stats.size() >= 2 ? stats[stats.size() - 2].workset_size
                                : r.state_records;
}

inline WorksetAB run_sssp_workset_ab(const ClusterConfig& config,
                                     const Graph& g, const std::string& base,
                                     int max_iters) {
  WorksetAB r;
  r.state_records = g.num_nodes();
  {
    Cluster cluster(config);
    Sssp::setup(cluster, g, 0, base);
    IterativeEngine engine(cluster);
    r.bulk = engine.run(
        Sssp::imapreduce(base, base + "/out_bulk", max_iters, 0.5));
    r.bulk_mapped = cluster.metrics().count("imr_map_input_records");
  }
  {
    Cluster cluster(config);
    Sssp::setup(cluster, g, 0, base);
    IterJobConf conf = Sssp::imapreduce(base, base + "/out_ws", max_iters);
    conf.workset_mode = true;
    IterativeEngine engine(cluster);
    r.ws = engine.run(conf);
    r.ws_mapped = cluster.metrics().count("imr_map_input_records");
  }
  finish_workset_ab(r);
  return r;
}

inline WorksetAB run_pagerank_workset_ab(const ClusterConfig& config,
                                         const Graph& g,
                                         const std::string& base,
                                         int max_iters, double theta) {
  WorksetAB r;
  r.state_records = g.num_nodes();
  {
    Cluster cluster(config);
    PageRank::setup_delta(cluster, g, base);
    IterativeEngine engine(cluster);
    r.bulk = engine.run(PageRank::imapreduce_delta(base, base + "/out_bulk",
                                                   max_iters, theta));
    r.bulk_mapped = cluster.metrics().count("imr_map_input_records");
  }
  {
    Cluster cluster(config);
    PageRank::setup_delta(cluster, g, base);
    IterJobConf conf =
        PageRank::imapreduce_delta(base, base + "/out_ws", max_iters, theta);
    conf.workset_mode = true;
    conf.distance_threshold = -1.0;
    IterativeEngine engine(cluster);
    r.ws = engine.run(conf);
    r.ws_mapped = cluster.metrics().count("imr_map_input_records");
  }
  finish_workset_ab(r);
  return r;
}

// Prints the Figs. 4–7 style four-curve table plus the speedup summary.
inline void print_fourway(const FourWay& r) {
  print_series({series_of("MapReduce", r.mr),
                series_ex_init("MapReduce (ex. init.)", r.mr),
                series_of("iMapReduce (sync.)", r.imr_sync),
                series_of("iMapReduce", r.imr)});
  note("speedup iMapReduce vs MapReduce: " +
       fmt_ratio(r.mr.total_wall_ms, r.imr.total_wall_ms));
  note("init savings:        " +
       fmt_pct(r.mr.init_wall_ms, r.mr.total_wall_ms) + " of baseline time");
  note("async map savings:   " +
       fmt_pct(r.imr_sync.total_wall_ms - r.imr.total_wall_ms,
               r.mr.total_wall_ms) +
       " of baseline time");
}

inline std::string dataset_line(const std::string& name, const Graph& g) {
  return name + ": " + human_count(g.num_nodes()) + " nodes, " +
         human_count(g.num_edges()) + " edges, " +
         human_bytes(g.file_bytes());
}

}  // namespace imr::bench
