// Shared experiment drivers for the figure/table benches.
//
// Dataset scales: the paper's graphs are scaled down (DESIGN.md) so a
// single-core CI box finishes the full suite in minutes. The published
// size ratios between s/m/l are preserved.
#pragma once

#include <memory>
#include <string>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "bench_util/harness.h"
#include "common/log.h"
#include "common/strings.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"

namespace imr::bench {

// Scale factors for the named datasets (1.0 = published size).
inline constexpr double kLocalGraphScale = 1.0;   // DBLP (Fig. 4): full published size
// Figs. 5-7 run the bigger webgraphs at 30% size with the cost model scaled
// to match (CostModel::scaled_for_data) so the suite stays fast on one core.
inline constexpr double kMediumGraphScale = 0.3;
inline constexpr double kMediumDataScale = 1.0 / kMediumGraphScale;
inline constexpr double kSyntheticScale = 0.005;  // sssp-s/m/l, pagerank-s/m/l
inline constexpr double kSyntheticDataScale = 1.0 / kSyntheticScale;
inline constexpr uint64_t kSeed = 20110516;       // IPDPS 2011 workshop week

// The four configurations of Figs. 4–7.
struct FourWay {
  RunReport mr;        // chain of jobs + convergence-check job per iteration
  RunReport imr_sync;  // persistent tasks, synchronous maps
  RunReport imr;       // persistent tasks, asynchronous maps
  int64_t mr_comm = 0;   // total remote bytes of the MapReduce run
  int64_t imr_comm = 0;  // total remote bytes of the async iMapReduce run
};

// Runs SSSP in all configurations for `iters` fixed iterations.
// `with_check_job` adds the paper's per-iteration convergence-check job to
// the baseline (used by the local-cluster figures).
inline FourWay run_sssp_fourway(Cluster& cluster, const Graph& g,
                                const std::string& base, int iters,
                                bool with_check_job) {
  FourWay out;
  Sssp::setup(cluster, g, 0, base);

  cluster.metrics().reset();
  IterativeDriver driver(cluster);
  // threshold 0 never triggers (distances are >= 0), so the check job runs
  // every iteration without stopping the fixed-length run.
  out.mr = driver.run(Sssp::baseline(base, base + "/work", iters,
                                     with_check_job ? 0.0 : -1.0));
  out.mr_comm = cluster.metrics().total_remote_bytes();

  IterativeEngine engine(cluster);
  IterJobConf sync_conf = Sssp::imapreduce(base, base + "/out_sync", iters);
  sync_conf.async_maps = false;
  cluster.metrics().reset();
  out.imr_sync = engine.run(sync_conf);

  cluster.metrics().reset();
  out.imr = engine.run(Sssp::imapreduce(base, base + "/out", iters));
  out.imr_comm = cluster.metrics().total_remote_bytes();
  return out;
}

inline FourWay run_pagerank_fourway(Cluster& cluster, const Graph& g,
                                    const std::string& base, int iters,
                                    bool with_check_job) {
  FourWay out;
  PageRank::setup(cluster, g, base);

  cluster.metrics().reset();
  IterativeDriver driver(cluster);
  out.mr = driver.run(PageRank::baseline(base, base + "/work", g.num_nodes(),
                                         iters, with_check_job ? 0.0 : -1.0));
  out.mr_comm = cluster.metrics().total_remote_bytes();

  IterativeEngine engine(cluster);
  IterJobConf sync_conf =
      PageRank::imapreduce(base, base + "/out_sync", g.num_nodes(), iters);
  sync_conf.async_maps = false;
  cluster.metrics().reset();
  out.imr_sync = engine.run(sync_conf);

  cluster.metrics().reset();
  out.imr =
      engine.run(PageRank::imapreduce(base, base + "/out", g.num_nodes(), iters));
  out.imr_comm = cluster.metrics().total_remote_bytes();
  return out;
}

// Prints the Figs. 4–7 style four-curve table plus the speedup summary.
inline void print_fourway(const FourWay& r) {
  print_series({series_of("MapReduce", r.mr),
                series_ex_init("MapReduce (ex. init.)", r.mr),
                series_of("iMapReduce (sync.)", r.imr_sync),
                series_of("iMapReduce", r.imr)});
  note("speedup iMapReduce vs MapReduce: " +
       fmt_ratio(r.mr.total_wall_ms, r.imr.total_wall_ms));
  note("init savings:        " +
       fmt_pct(r.mr.init_wall_ms, r.mr.total_wall_ms) + " of baseline time");
  note("async map savings:   " +
       fmt_pct(r.imr_sync.total_wall_ms - r.imr.total_wall_ms,
               r.mr.total_wall_ms) +
       " of baseline time");
}

inline std::string dataset_line(const std::string& name, const Graph& g) {
  return name + ": " + human_count(g.num_nodes()) + " nodes, " +
         human_count(g.num_edges()) + " edges, " +
         human_bytes(g.file_bytes());
}

}  // namespace imr::bench
