// Table 2: PageRank data sets statistics.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Table 2", "PageRank data sets statistics (scaled stand-ins)");

  struct Row {
    const char* name;
    double scale;
    const char* paper_nodes;
    const char* paper_edges;
    const char* paper_size;
  };
  const Row rows[] = {
      {"google", kLocalGraphScale, "916,417", "6,078,254", "49 MB"},
      {"berkstan", kLocalGraphScale, "685,230", "7,600,595", "57 MB"},
      {"pagerank-s", kSyntheticScale, "1M", "7,425,360", "61 MB"},
      {"pagerank-m", kSyntheticScale, "10M", "75,061,501", "690 MB"},
      {"pagerank-l", kSyntheticScale, "30M", "224,493,620", "2.26 GB"},
  };

  TextTable table({"graph", "nodes", "edges", "file size", "paper nodes",
                   "paper edges", "paper size"});
  for (const Row& r : rows) {
    Graph g = make_pagerank_graph(r.name, r.scale, kSeed);
    GraphStats s = stats_of(r.name, g);
    table.add_row({s.name, human_count(s.nodes), human_count(s.edges),
                   human_bytes(s.file_bytes), r.paper_nodes, r.paper_edges,
                   r.paper_size});
  }
  print_table(table);
  note("out-degree ~ LogNormal(mu=-0.5, sigma=2.0) per the paper; unweighted");
  return 0;
}
