// Ablation A1: the reduce->map send-buffer threshold (§3.3).
//
// The paper argues eager per-record triggering causes excessive context
// switches / per-message overhead and introduces a buffered hand-off. This
// sweep shows the per-message latency cost at tiny buffers and the
// diminishing returns of very large ones.
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Ablation A1", "reduce->map send buffer threshold sweep");
  Graph g = make_pagerank_graph("google", 0.1, kSeed);
  note(dataset_line("google (scaled)", g));

  Cluster cluster(local_cluster_preset(/*data_scale=*/10.0));
  PageRank::setup(cluster, g, "pr");
  IterativeEngine engine(cluster);

  TextTable table({"buffer (records)", "total (s)", "reduce->map transfers"});
  for (int buffer : {1, 16, 256, 4096, 65536, 1 << 20}) {
    IterJobConf conf =
        PageRank::imapreduce("pr", "out", g.num_nodes(), /*iters=*/10);
    conf.buffer_records = buffer;
    cluster.metrics().reset();
    RunReport r = engine.run(conf);
    table.add_row(
        {std::to_string(buffer), fmt_double(r.total_wall_ms / 1e3, 1),
         std::to_string(
             cluster.metrics().traffic_transfers(TrafficCategory::kReduceToMap))});
  }
  print_table(table);
  note("expected: eager (1-record) hand-off pays per-message overhead; "
       "large buffers converge to the same total");
  return 0;
}
