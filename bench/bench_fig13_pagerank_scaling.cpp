// Figure 13: speedup over the Hadoop implementation for PageRank when
// scaling the cluster from 20 to 80 instances (pagerank-l, 10 iterations).
#include "bench/bench_common.h"
#include "metrics/table.h"

using namespace imr;
using namespace imr::bench;

int main() {
  banner("Figure 13", "PageRank scaling: cluster size 20 -> 50 -> 80");
  Graph g = make_pagerank_graph("pagerank-l", kSyntheticScale, kSeed);
  note(dataset_line("pagerank-l", g));

  TextTable table({"instances", "MapReduce (s)", "iMapReduce (s)",
                   "iMR/MR ratio"});
  double first_ratio = 0, last_ratio = 0;
  for (int n : {20, 50, 80}) {
    Cluster cluster(ec2_preset(n, kSyntheticDataScale));
    FourWay r = run_pagerank_fourway(cluster, g, "pr_l", 10, true);
    double ratio = r.imr.total_wall_ms / r.mr.total_wall_ms;
    if (n == 20) first_ratio = ratio;
    last_ratio = ratio;
    table.add_row({std::to_string(n), fmt_double(r.mr.total_wall_ms / 1e3, 1),
                   fmt_double(r.imr.total_wall_ms / 1e3, 1),
                   fmt_pct(r.imr.total_wall_ms, r.mr.total_wall_ms)});
  }
  print_table(table);
  expectation(
      "the iMR/MR running time ratio improves by ~7% from 20 to 80 instances",
      "ratio change " + fmt_double(100 * (first_ratio - last_ratio), 1) +
          " percentage points (20 -> 80)");
  return 0;
}
