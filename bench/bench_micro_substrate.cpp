// Micro-benchmarks (google-benchmark) for the substrate hot paths: codecs,
// partitioning, sort/group, fabric send/receive, DFS round-trips.
//
// These measure REAL nanoseconds (not virtual time); they guard the
// constant factors that the compute_scale calibration in the cost model
// assumes.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/codec.h"
#include "common/hash.h"
#include "common/rng.h"
#include "mapreduce/shuffle_util.h"
#include "metrics/trace.h"

namespace imr {
namespace {

void BM_EncodeF64(benchmark::State& state) {
  Bytes out;
  double v = 1.234567;
  for (auto _ : state) {
    out.clear();
    encode_f64(v, out);
    benchmark::DoNotOptimize(out);
    v += 0.1;
  }
}
BENCHMARK(BM_EncodeF64);

void BM_DecodeWEdges(benchmark::State& state) {
  std::vector<WEdge> edges;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    edges.push_back(WEdge{i * 7, 1.5 * i});
  }
  Bytes enc;
  encode_wedges(edges, enc);
  for (auto _ : state) {
    auto decoded = decode_wedges(enc);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeWEdges)->Arg(8)->Arg(64)->Arg(512);

void BM_Partition(benchmark::State& state) {
  Rng rng(1);
  std::vector<Bytes> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(u64_key(rng.next_u64()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_of(keys[i++ & 1023], 64));
  }
}
BENCHMARK(BM_Partition);

void BM_SortRecords(benchmark::State& state) {
  Rng rng(2);
  KVVec base;
  for (int i = 0; i < state.range(0); ++i) {
    base.emplace_back(u64_key(rng.next_u64()), f64_value(1.0));
  }
  for (auto _ : state) {
    KVVec copy = base;
    sort_records(copy, true);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortRecords)->Arg(1024)->Arg(16384);

void BM_FabricSendReceive(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  auto ep = cluster.fabric().create_endpoint("bm", 0);
  VClock sender, receiver;
  KVVec payload;
  for (int i = 0; i < state.range(0); ++i) {
    payload.emplace_back(u32_key(static_cast<uint32_t>(i)), f64_value(1.0));
  }
  for (auto _ : state) {
    NetMessage msg;
    msg.set_records(payload);
    cluster.fabric().send(1, sender, *ep, std::move(msg),
                          TrafficCategory::kShuffle);
    auto got = ep->receive(receiver);
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FabricSendReceive)->Arg(1)->Arg(256);

// Multi-threaded send throughput: N task threads hammering one fabric, each
// into its own mailbox (the engine's shape: per-task endpoints, shared
// fabric). This is the series that exposes per-send global locking — with
// faults disarmed the hot path should touch no mutex besides the target
// queue's own.
struct MtSendEnv {
  Cluster cluster;
  std::vector<std::shared_ptr<Endpoint>> eps;

  explicit MtSendEnv(double drop_rate) : cluster(free_config()) {
    if (drop_rate > 0) {
      ChannelFaultConfig faults;
      faults.drop_rate = drop_rate;
      faults.seed = 7;
      cluster.fabric().set_channel_faults(faults);
    }
    for (int t = 0; t < 64; ++t) {
      eps.push_back(cluster.fabric().create_endpoint(
          "mt" + std::to_string(t), 0));
    }
  }

  static ClusterConfig free_config() {
    ClusterConfig cfg;
    cfg.cost = CostModel::free();
    return cfg;
  }
};

void mt_send_loop(benchmark::State& state, MtSendEnv& env) {
  Endpoint& ep =
      *env.eps[static_cast<std::size_t>(state.thread_index()) % env.eps.size()];
  KVVec payload;
  for (int i = 0; i < 4; ++i) {
    payload.emplace_back(u32_key(static_cast<uint32_t>(i)), f64_value(1.0));
  }
  VClock sender, receiver;
  for (auto _ : state) {
    NetMessage msg;
    msg.set_records(payload);
    env.cluster.fabric().send(1, sender, ep, std::move(msg),
                              TrafficCategory::kShuffle);
    auto got = ep.receive(receiver);
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FabricSendMTDisarmed(benchmark::State& state) {
  static MtSendEnv env(/*drop_rate=*/0.0);  // magic static: init-once, shared
  mt_send_loop(state, env);
}
BENCHMARK(BM_FabricSendMTDisarmed)->Threads(1)->Threads(4)->Threads(8);

void BM_FabricSendMTArmed(benchmark::State& state) {
  static MtSendEnv env(/*drop_rate=*/0.01);  // seeded slow path engaged
  mt_send_loop(state, env);
}
BENCHMARK(BM_FabricSendMTArmed)->Threads(1)->Threads(4)->Threads(8);

// Broadcast of one payload to T endpoints (the one2all reduce->map shape).
// Guards the payload-copy behavior: time here is dominated by how many deep
// copies of the records the fabric makes per broadcast.
void BM_BroadcastPayload(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  const int T = static_cast<int>(state.range(0));
  std::vector<std::shared_ptr<Endpoint>> eps;
  for (int t = 0; t < T; ++t) {
    eps.push_back(cluster.fabric().create_endpoint("bc" + std::to_string(t),
                                                   t % 2));
  }
  KVVec payload;
  for (int i = 0; i < 1024; ++i) {
    payload.emplace_back(u32_key(static_cast<uint32_t>(i)), f64_value(1.0));
  }
  VClock sender, receiver;
  for (auto _ : state) {
    NetMessage msg;
    msg.set_records(payload);
    cluster.fabric().broadcast(0, sender, eps, msg,
                               TrafficCategory::kBroadcast);
    for (auto& ep : eps) {
      while (ep->pending() > 0) {
        auto got = ep->receive(receiver);
        benchmark::DoNotOptimize(got);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * T);
}
BENCHMARK(BM_BroadcastPayload)->Arg(4)->Arg(16);

void BM_DfsWriteRead(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  KVVec records;
  for (int i = 0; i < state.range(0); ++i) {
    records.emplace_back(u32_key(static_cast<uint32_t>(i)), Bytes(64, 'x'));
  }
  for (auto _ : state) {
    cluster.dfs().write_file("bm", records, 0, nullptr);
    auto back = cluster.dfs().read_all("bm", 1, nullptr);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DfsWriteRead)->Arg(1024);

// Tracing-overhead series. Disabled tracing is the default everywhere, so
// BM_FabricSendMTDisarmed above IS the disabled-tracing baseline — its
// numbers must not move when the trace probes are in the tree. This series
// measures the armed recorder on the same send/receive loop: flow stamping,
// ring writes, in-flight counters. Registered LAST: enable() is global and
// sticky, and must not leak into the other series (benchmarks run in
// registration order).
void BM_FabricSendMTTraceEnabled(benchmark::State& state) {
  // The lambda-initialized magic static doubles as a cross-thread barrier:
  // no thread reaches the loop until tracing is armed.
  static MtSendEnv& env = []() -> MtSendEnv& {
    static MtSendEnv e(/*drop_rate=*/0.0);
    TraceRecorder::instance().enable();
    return e;
  }();
  mt_send_loop(state, env);
}
BENCHMARK(BM_FabricSendMTTraceEnabled)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace imr

BENCHMARK_MAIN();
