// Micro-benchmarks (google-benchmark) for the substrate hot paths: codecs,
// partitioning, sort/group, fabric send/receive, DFS round-trips.
//
// These measure REAL nanoseconds (not virtual time); they guard the
// constant factors that the compute_scale calibration in the cost model
// assumes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/codec.h"
#include "common/hash.h"
#include "common/rng.h"
#include "imapreduce/static_store.h"
#include "mapreduce/shuffle_util.h"
#include "metrics/telemetry.h"
#include "metrics/trace.h"

namespace imr {
namespace {

void BM_EncodeF64(benchmark::State& state) {
  Bytes out;
  double v = 1.234567;
  for (auto _ : state) {
    out.clear();
    encode_f64(v, out);
    benchmark::DoNotOptimize(out);
    v += 0.1;
  }
}
BENCHMARK(BM_EncodeF64);

void BM_DecodeWEdges(benchmark::State& state) {
  std::vector<WEdge> edges;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    edges.push_back(WEdge{i * 7, 1.5 * i});
  }
  Bytes enc;
  encode_wedges(edges, enc);
  for (auto _ : state) {
    auto decoded = decode_wedges(enc);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeWEdges)->Arg(8)->Arg(64)->Arg(512);

void BM_Partition(benchmark::State& state) {
  Rng rng(1);
  std::vector<Bytes> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(u64_key(rng.next_u64()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_of(keys[i++ & 1023], 64));
  }
}
BENCHMARK(BM_Partition);

void BM_SortRecords(benchmark::State& state) {
  Rng rng(2);
  KVVec base;
  for (int i = 0; i < state.range(0); ++i) {
    base.emplace_back(u64_key(rng.next_u64()), f64_value(1.0));
  }
  for (auto _ : state) {
    KVVec copy = base;
    sort_records(copy, true);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortRecords)->Arg(1024)->Arg(16384);

// Arena-backed overload (DESIGN.md §10): the (prefix, index) scratch comes
// from pooled blocks instead of the global allocator — after the first
// iteration the sort path performs zero heap allocations. A/B against
// BM_SortRecords above (same seed, same shape) measures the allocator's
// share of the per-iteration sort.
void BM_SortRecordsArena(benchmark::State& state) {
  Rng rng(2);
  KVVec base;
  for (int i = 0; i < state.range(0); ++i) {
    base.emplace_back(u64_key(rng.next_u64()), f64_value(1.0));
  }
  RecordArena arena;
  for (auto _ : state) {
    KVVec copy = base;
    sort_records(copy, true, arena);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortRecordsArena)->Arg(1024)->Arg(16384);

// --- Record-path A/B series -------------------------------------------------
// The machine drifts between benchmark runs, so the pre-overhaul
// implementations are kept VERBATIM inside this binary: one run of the suite
// is an interleaved before/after comparison on identical machine state.

// Reference: sort_records as it was before the prefix pass.
void sort_records_reference(KVVec& records, bool sort_values) {
  if (sort_values) {
    std::sort(records.begin(), records.end());
  } else {
    std::stable_sort(records.begin(), records.end(),
                     [](const KV& a, const KV& b) { return a.key < b.key; });
  }
}

void BM_SortRecordsStd(benchmark::State& state) {
  Rng rng(2);  // same seed/shape as BM_SortRecords: A/B on identical input
  KVVec base;
  for (int i = 0; i < state.range(0); ++i) {
    base.emplace_back(u64_key(rng.next_u64()), f64_value(1.0));
  }
  for (auto _ : state) {
    KVVec copy = base;
    sort_records_reference(copy, true);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortRecordsStd)->Arg(1024)->Arg(16384);

// Static-data join: the per-record state->static lookup of iterative map
// (§3.2.2). 16k static records, probed with every key once per iteration, in
// shuffled (arrival-like) order.
struct JoinFixture {
  KVVec sorted;
  std::vector<Bytes> probes;

  explicit JoinFixture(int n) {
    Rng rng(3);
    for (int i = 0; i < n; ++i) {
      sorted.emplace_back(u64_key(rng.next_u64()), f64_value(1.0));
    }
    sort_records(sorted, false);
    for (const KV& kv : sorted) probes.push_back(kv.key);
    for (std::size_t i = probes.size(); i > 1; --i) {
      std::swap(probes[i - 1], probes[rng.next_u64() % i]);
    }
  }
};

// Reference: the binary-search join the engine used before StaticStore.
void BM_StaticJoinLowerBound(benchmark::State& state) {
  JoinFixture fx(static_cast<int>(state.range(0)));
  const KVVec& static_sorted = fx.sorted;
  auto static_value = [&](const Bytes& key) -> const Bytes* {
    auto it = std::lower_bound(
        static_sorted.begin(), static_sorted.end(), key,
        [](const KV& kv, const Bytes& k) { return kv.key < k; });
    if (it == static_sorted.end() || it->key != key) return nullptr;
    return &it->value;
  };
  for (auto _ : state) {
    for (const Bytes& k : fx.probes) {
      benchmark::DoNotOptimize(static_value(k));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StaticJoinLowerBound)->Arg(1024)->Arg(16384);

void BM_StaticJoinIndex(benchmark::State& state) {
  JoinFixture fx(static_cast<int>(state.range(0)));
  StaticStore store;
  store.build(fx.sorted);  // copy in: fixture keeps the probe source
  for (auto _ : state) {
    for (const Bytes& k : fx.probes) {
      benchmark::DoNotOptimize(store.find(k));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StaticJoinIndex)->Arg(1024)->Arg(16384);

// Group iteration over a sorted reduce buffer: 8 values per key, f64 values
// (the PageRank/SSSP shape). The "work" per group is a byte sum so neither
// side can dead-code the values away.
struct GroupFixture {
  KVVec sorted;

  explicit GroupFixture(int n) {
    Rng rng(4);
    for (int i = 0; i < n; ++i) {
      sorted.emplace_back(u64_key(rng.next_u64() % (n / 8 + 1)),
                          f64_value(static_cast<double>(i)));
    }
    sort_records(sorted, true);
  }
};

// Reference: for_each_group as it was — a fresh std::vector<Bytes> of copied
// values per group.
void for_each_group_reference(
    const KVVec& sorted,
    const std::function<void(const Bytes& key,
                             const std::vector<Bytes>& values)>& fn) {
  std::size_t i = 0;
  std::vector<Bytes> values;
  while (i < sorted.size()) {
    std::size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].key == sorted[i].key) {
      values.push_back(sorted[j].value);
      ++j;
    }
    fn(sorted[i].key, values);
    i = j;
  }
}

void BM_GroupIterateCopy(benchmark::State& state) {
  GroupFixture fx(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t bytes = 0;
    for_each_group_reference(
        fx.sorted, [&](const Bytes& key, const std::vector<Bytes>& values) {
          bytes += key.size();
          for (const Bytes& v : values) bytes += v.size();
        });
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupIterateCopy)->Arg(1024)->Arg(16384);

void BM_GroupIterateCursor(benchmark::State& state) {
  GroupFixture fx(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t bytes = 0;
    GroupCursor groups(fx.sorted);
    while (groups.next()) {
      bytes += groups.key().size();
      for (const KV& kv : groups.run()) bytes += kv.value.size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupIterateCursor)->Arg(1024)->Arg(16384);

// Map-side combining: 16k records onto 2k keys with a summing combiner —
// sorted run-length combining (the deterministic_reduce path, with the sort
// it requires) vs hash aggregation (the new default path, no sort at all).
struct CombineFixture {
  KVVec base;
  CombineFn sum = [](const Bytes& key, const std::vector<Bytes>& values,
                     KVVec& out) {
    double total = 0;
    for (const Bytes& v : values) {
      std::size_t pos = 0;
      total += decode_f64(v, pos);
    }
    out.emplace_back(key, f64_value(total));
  };

  explicit CombineFixture(int n) {
    Rng rng(5);
    for (int i = 0; i < n; ++i) {
      base.emplace_back(u64_key(rng.next_u64() % (n / 8 + 1)),
                        f64_value(1.0));
    }
  }
};

void BM_CombineSorted(benchmark::State& state) {
  CombineFixture fx(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    KVVec buf = fx.base;
    sort_records(buf, true);
    benchmark::DoNotOptimize(combine_sorted(buf, fx.sum));
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CombineSorted)->Arg(1024)->Arg(16384);

void BM_CombineHashed(benchmark::State& state) {
  CombineFixture fx(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    KVVec buf = fx.base;
    benchmark::DoNotOptimize(combine_hashed(buf, fx.sum));
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CombineHashed)->Arg(1024)->Arg(16384);

void BM_FabricSendReceive(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  auto ep = cluster.fabric().create_endpoint("bm", 0);
  VClock sender, receiver;
  KVVec payload;
  for (int i = 0; i < state.range(0); ++i) {
    payload.emplace_back(u32_key(static_cast<uint32_t>(i)), f64_value(1.0));
  }
  for (auto _ : state) {
    NetMessage msg;
    msg.set_records(payload);
    cluster.fabric().send(1, sender, *ep, std::move(msg),
                          TrafficCategory::kShuffle);
    auto got = ep->receive(receiver);
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FabricSendReceive)->Arg(1)->Arg(256);

// Multi-threaded send throughput: N task threads hammering one fabric, each
// into its own mailbox (the engine's shape: per-task endpoints, shared
// fabric). This is the series that exposes per-send global locking — with
// faults disarmed the hot path should touch no mutex besides the target
// queue's own.
struct MtSendEnv {
  Cluster cluster;
  std::vector<std::shared_ptr<Endpoint>> eps;

  explicit MtSendEnv(double drop_rate) : cluster(free_config()) {
    if (drop_rate > 0) {
      ChannelFaultConfig faults;
      faults.drop_rate = drop_rate;
      faults.seed = 7;
      cluster.fabric().set_channel_faults(faults);
    }
    for (int t = 0; t < 64; ++t) {
      eps.push_back(cluster.fabric().create_endpoint(
          "mt" + std::to_string(t), 0));
    }
  }

  static ClusterConfig free_config() {
    ClusterConfig cfg;
    cfg.cost = CostModel::free();
    return cfg;
  }
};

void mt_send_loop(benchmark::State& state, MtSendEnv& env) {
  Endpoint& ep =
      *env.eps[static_cast<std::size_t>(state.thread_index()) % env.eps.size()];
  KVVec payload;
  for (int i = 0; i < 4; ++i) {
    payload.emplace_back(u32_key(static_cast<uint32_t>(i)), f64_value(1.0));
  }
  VClock sender, receiver;
  for (auto _ : state) {
    NetMessage msg;
    msg.set_records(payload);
    env.cluster.fabric().send(1, sender, ep, std::move(msg),
                              TrafficCategory::kShuffle);
    auto got = ep.receive(receiver);
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FabricSendMTDisarmed(benchmark::State& state) {
  static MtSendEnv env(/*drop_rate=*/0.0);  // magic static: init-once, shared
  mt_send_loop(state, env);
}
BENCHMARK(BM_FabricSendMTDisarmed)->Threads(1)->Threads(4)->Threads(8);

void BM_FabricSendMTArmed(benchmark::State& state) {
  static MtSendEnv env(/*drop_rate=*/0.01);  // seeded slow path engaged
  mt_send_loop(state, env);
}
BENCHMARK(BM_FabricSendMTArmed)->Threads(1)->Threads(4)->Threads(8);

// Broadcast of one payload to T endpoints (the one2all reduce->map shape).
// Guards the payload-copy behavior: time here is dominated by how many deep
// copies of the records the fabric makes per broadcast.
void BM_BroadcastPayload(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  const int T = static_cast<int>(state.range(0));
  std::vector<std::shared_ptr<Endpoint>> eps;
  for (int t = 0; t < T; ++t) {
    eps.push_back(cluster.fabric().create_endpoint("bc" + std::to_string(t),
                                                   t % 2));
  }
  KVVec payload;
  for (int i = 0; i < 1024; ++i) {
    payload.emplace_back(u32_key(static_cast<uint32_t>(i)), f64_value(1.0));
  }
  VClock sender, receiver;
  for (auto _ : state) {
    NetMessage msg;
    msg.set_records(payload);
    cluster.fabric().broadcast(0, sender, eps, msg,
                               TrafficCategory::kBroadcast);
    for (auto& ep : eps) {
      while (ep->pending() > 0) {
        auto got = ep->receive(receiver);
        benchmark::DoNotOptimize(got);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * T);
}
BENCHMARK(BM_BroadcastPayload)->Arg(4)->Arg(16);

void BM_DfsWriteRead(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  KVVec records;
  for (int i = 0; i < state.range(0); ++i) {
    records.emplace_back(u32_key(static_cast<uint32_t>(i)), Bytes(64, 'x'));
  }
  for (auto _ : state) {
    cluster.dfs().write_file("bm", records, 0, nullptr);
    auto back = cluster.dfs().read_all("bm", 1, nullptr);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DfsWriteRead)->Arg(1024);

// Tracing-overhead series. Disabled tracing is the default everywhere, so
// BM_FabricSendMTDisarmed above IS the disabled-tracing baseline — its
// numbers must not move when the trace probes are in the tree. This series
// measures the armed recorder on the same send/receive loop: flow stamping,
// ring writes, in-flight counters. Registered LAST: enable() is global and
// sticky, and must not leak into the other series (benchmarks run in
// registration order).
void BM_FabricSendMTTraceEnabled(benchmark::State& state) {
  // The lambda-initialized magic static doubles as a cross-thread barrier:
  // no thread reaches the loop until tracing is armed.
  static MtSendEnv& env = []() -> MtSendEnv& {
    static MtSendEnv e(/*drop_rate=*/0.0);
    TraceRecorder::instance().enable();
    return e;
  }();
  mt_send_loop(state, env);
}
BENCHMARK(BM_FabricSendMTTraceEnabled)->Threads(1)->Threads(4)->Threads(8);

// Telemetry-overhead series, same discipline as the tracing series above:
// BM_FabricSendMTDisarmed is the disabled-telemetry baseline (one relaxed
// atomic load per probe), and this measures the armed ledger — striped
// matrix counters plus per-iteration buckets — on the same loop. Registered
// after the tracing series; the init lambda swaps the sticky trace gate off
// so the two armed costs are not conflated.
void BM_FabricSendMTTelemetryEnabled(benchmark::State& state) {
  static MtSendEnv& env = []() -> MtSendEnv& {
    static MtSendEnv e(/*drop_rate=*/0.0);
    TraceRecorder::instance().disable();
    TelemetryRecorder::instance().enable();
    return e;
  }();
  mt_send_loop(state, env);
}
BENCHMARK(BM_FabricSendMTTelemetryEnabled)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace imr

BENCHMARK_MAIN();
