// Micro-benchmarks (google-benchmark) for the substrate hot paths: codecs,
// partitioning, sort/group, fabric send/receive, DFS round-trips.
//
// These measure REAL nanoseconds (not virtual time); they guard the
// constant factors that the compute_scale calibration in the cost model
// assumes.
#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "common/codec.h"
#include "common/hash.h"
#include "common/rng.h"
#include "mapreduce/shuffle_util.h"

namespace imr {
namespace {

void BM_EncodeF64(benchmark::State& state) {
  Bytes out;
  double v = 1.234567;
  for (auto _ : state) {
    out.clear();
    encode_f64(v, out);
    benchmark::DoNotOptimize(out);
    v += 0.1;
  }
}
BENCHMARK(BM_EncodeF64);

void BM_DecodeWEdges(benchmark::State& state) {
  std::vector<WEdge> edges;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    edges.push_back(WEdge{i * 7, 1.5 * i});
  }
  Bytes enc;
  encode_wedges(edges, enc);
  for (auto _ : state) {
    auto decoded = decode_wedges(enc);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeWEdges)->Arg(8)->Arg(64)->Arg(512);

void BM_Partition(benchmark::State& state) {
  Rng rng(1);
  std::vector<Bytes> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(u64_key(rng.next_u64()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_of(keys[i++ & 1023], 64));
  }
}
BENCHMARK(BM_Partition);

void BM_SortRecords(benchmark::State& state) {
  Rng rng(2);
  KVVec base;
  for (int i = 0; i < state.range(0); ++i) {
    base.emplace_back(u64_key(rng.next_u64()), f64_value(1.0));
  }
  for (auto _ : state) {
    KVVec copy = base;
    sort_records(copy, true);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortRecords)->Arg(1024)->Arg(16384);

void BM_FabricSendReceive(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  auto ep = cluster.fabric().create_endpoint("bm", 0);
  VClock sender, receiver;
  KVVec payload;
  for (int i = 0; i < state.range(0); ++i) {
    payload.emplace_back(u32_key(static_cast<uint32_t>(i)), f64_value(1.0));
  }
  for (auto _ : state) {
    NetMessage msg;
    msg.records = payload;
    cluster.fabric().send(1, sender, *ep, std::move(msg),
                          TrafficCategory::kShuffle);
    auto got = ep->receive(receiver);
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FabricSendReceive)->Arg(1)->Arg(256);

void BM_DfsWriteRead(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  KVVec records;
  for (int i = 0; i < state.range(0); ++i) {
    records.emplace_back(u32_key(static_cast<uint32_t>(i)), Bytes(64, 'x'));
  }
  for (auto _ : state) {
    cluster.dfs().write_file("bm", records, 0, nullptr);
    auto back = cluster.dfs().read_all("bm", 1, nullptr);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DfsWriteRead)->Arg(1024);

}  // namespace
}  // namespace imr

BENCHMARK_MAIN();
